//! Partitioning persistence: compute Libra once, train many times.
//!
//! Format (text): `num_parts num_vertices num_edges` header, then one
//! partition id per edge line (edge order = edge-list order). The
//! vertex→partitions map is reconstructed from the edge list on load,
//! which guarantees the invariants hold for whatever edge list the
//! caller pairs it with.

use crate::atomic::atomic_write;
use crate::{format_err, IoError};
use distgnn_graph::EdgeList;
use distgnn_partition::{PartId, Partitioning};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Writes the edge assignment of `p`, atomically.
pub fn save_partitioning(path: &Path, p: &Partitioning) -> Result<(), IoError> {
    let mut s = String::with_capacity(24 + p.edge_assign.len() * 3);
    let _ = writeln!(s, "{} {} {}", p.num_parts, p.num_vertices, p.edge_assign.len());
    for &a in &p.edge_assign {
        let _ = writeln!(s, "{a}");
    }
    atomic_write(path, s.as_bytes())
}

/// Loads an edge assignment and rebuilds the full [`Partitioning`]
/// against `edges` (which must be the edge list it was computed from).
pub fn load_partitioning(path: &Path, edges: &EdgeList) -> Result<Partitioning, IoError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| IoError::Format("empty partition file".into()))?;
    let mut it = header.split_whitespace();
    let parse = |s: Option<&str>, what: &str| -> Result<usize, IoError> {
        s.and_then(|x| x.parse().ok())
            .ok_or_else(|| IoError::Format(format!("bad header field `{what}`")))
    };
    let num_parts = parse(it.next(), "num_parts")?;
    let num_vertices = parse(it.next(), "num_vertices")?;
    let num_edges = parse(it.next(), "num_edges")?;
    if num_vertices != edges.num_vertices() || num_edges != edges.num_edges() {
        return format_err(format!(
            "partition was computed for a {num_vertices}-vertex/{num_edges}-edge graph, \
             got {}/{}",
            edges.num_vertices(),
            edges.num_edges()
        ));
    }
    let mut edge_assign: Vec<PartId> = Vec::with_capacity(num_edges);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let a: PartId = line
            .trim()
            .parse()
            .map_err(|_| IoError::Format(format!("bad partition id `{line}`")))?;
        if (a as usize) >= num_parts {
            return format_err(format!("partition id {a} out of range"));
        }
        edge_assign.push(a);
    }
    if edge_assign.len() != num_edges {
        return format_err("edge assignment count mismatch");
    }

    // Rebuild derived structures.
    let mut vertex_parts: Vec<Vec<PartId>> = vec![Vec::new(); num_vertices];
    let mut edge_loads = vec![0usize; num_parts];
    for (eid, u, v) in edges.iter() {
        let p = edge_assign[eid];
        edge_loads[p as usize] += 1;
        for w in [u, v] {
            let parts = &mut vertex_parts[w as usize];
            if let Err(pos) = parts.binary_search(&p) {
                parts.insert(pos, p);
            }
        }
    }
    Ok(Partitioning { num_parts, num_vertices, edge_assign, vertex_parts, edge_loads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;
    use distgnn_graph::generators::community_power_law;
    use distgnn_partition::libra_partition;

    fn sample() -> EdgeList {
        community_power_law(60, 400, 4, 0.8, 0.7, 8).symmetrize()
    }

    #[test]
    fn partitioning_round_trips_fully() {
        let e = sample();
        let p = libra_partition(&e, 4);
        let path = temp_path("part");
        save_partitioning(&path, &p).unwrap();
        let back = load_partitioning(&path, &e).unwrap();
        assert_eq!(back, p);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_mismatched_graph() {
        let e = sample();
        let p = libra_partition(&e, 4);
        let path = temp_path("part-mismatch");
        save_partitioning(&path, &p).unwrap();
        let other = community_power_law(61, 400, 4, 0.8, 0.7, 9).symmetrize();
        assert!(matches!(load_partitioning(&path, &other), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_partitioning_builds_the_same_setup() {
        use distgnn_partition::PartitionedGraph;
        let e = sample();
        let p = libra_partition(&e, 3);
        let path = temp_path("part-setup");
        save_partitioning(&path, &p).unwrap();
        let back = load_partitioning(&path, &e).unwrap();
        let a = PartitionedGraph::build(&e, &p, 5);
        let b = PartitionedGraph::build(&e, &back, 5);
        assert_eq!(a.root_of, b.root_of);
        assert_eq!(a.split_vertices, b.split_vertices);
        for (pa, pb) in a.parts.iter().zip(&b.parts) {
            assert_eq!(pa.graph, pb.graph);
            assert_eq!(pa.global_ids, pb.global_ids);
        }
        std::fs::remove_file(&path).ok();
    }
}
