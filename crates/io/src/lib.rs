//! On-disk formats for the DistGNN reproduction.
//!
//! Real deployments partition a billion-edge graph once and train many
//! times; Dist-DGL ships explicit `partition`/`load_partition` steps
//! and DistGNN's DGL code does the same with its Libra output. This
//! crate provides the equivalent persistence layer:
//!
//! - **edge lists** — the interchange format (`.el`, text: header line
//!   `num_vertices num_edges`, then one `src dst` pair per line, the
//!   same shape as OGB's CSVs);
//! - **matrices** — features and parameters (`.mat`, little-endian
//!   binary with a dims header);
//! - **datasets** — a directory bundling graph, features, labels and
//!   splits;
//! - **partitionings** — Libra's edge assignment, so a partition can be
//!   computed once and reused across runs and modes;
//! - **checkpoints** — versioned [`checkpoint::TrainState`] snapshots
//!   (model params, Adam moments, DRPA caches, in-flight messages) for
//!   crash recovery, plus the flat parameter dump.
//!
//! All formats round-trip exactly (bit-exact for f32 payloads) and are
//! validated on load with descriptive errors. Every saver writes
//! through [`atomic::atomic_write`] (temp file + rename), and binary
//! payloads carry CRC32 checksums so corruption surfaces as
//! [`IoError::Corrupt`] instead of silently poisoned training state.

pub mod async_writer;
pub mod atomic;
pub mod checkpoint;
pub mod dataset;
pub mod edgelist;
pub mod matrix;
pub mod partition;

pub use async_writer::{AsyncCheckpointWriter, CheckpointWriterReport};
pub use atomic::{atomic_write, crc32};
pub use checkpoint::{
    encode_train_state, encode_train_state_mode, latest_checkpoint, list_checkpoints,
    load_cluster_state, load_cluster_state_for, load_params, load_train_state,
    save_cluster_manifest, save_params,
    save_train_state, save_train_state_mode, CheckpointMode, DrpaState, PendingWire,
    RouteCacheState, TrainState,
};
pub use dataset::{load_dataset, save_dataset};
pub use edgelist::{load_edge_list, save_edge_list};
pub use matrix::{load_matrix, save_matrix};
pub use partition::{load_partitioning, save_partitioning};

use std::fmt;
use std::io;

/// Errors for every loader/saver in this crate.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    /// The file parsed but violated the format (message explains how).
    Format(String),
    /// The file matched the format but its contents are damaged —
    /// truncated payload or checksum mismatch (bit rot, torn write).
    Corrupt(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Corrupt(m) => write!(f, "corrupt file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn format_err<T>(msg: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Format(msg.into()))
}

pub(crate) fn corrupt_err<T>(msg: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Corrupt(msg.into()))
}

/// A fresh unique path under the system temp dir (test helper).
#[doc(hidden)]
pub fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "distgnn-io-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ))
}
