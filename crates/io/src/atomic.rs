//! Crash-safe writes and payload checksums, shared by every saver.
//!
//! All on-disk artifacts are written to a sibling temp file first and
//! atomically renamed into place, so a reader never observes a
//! half-written file — a crash mid-write leaves either the old file or
//! nothing. Binary payloads additionally carry a CRC32 so bit flips
//! and truncation surface as [`crate::IoError::Corrupt`] instead of
//! silently corrupted training state.

use crate::IoError;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
/// checksum zlib/PNG use, hand-rolled because the workspace is
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Writes `bytes` to `path` atomically: a uniquely-named sibling temp
/// file is written, fsynced, and renamed over the target. Readers see
/// the old contents or the new, never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), IoError> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .ok_or_else(|| IoError::Format(format!("cannot atomically write to `{}`", path.display())))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp-{}-{n}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result.map_err(IoError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;

    /// The standard CRC-32 check value: crc32("123456789").
    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = vec![0xA5u8; 256];
        let clean = crc32(&data);
        for byte in [0usize, 17, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn atomic_write_replaces_contents_completely() {
        let p = temp_path("atomic");
        atomic_write(&p, b"first version").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first version");
        atomic_write(&p, b"second").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second");
        // No temp litter left beside the target.
        let dir = p.parent().unwrap();
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        let litter = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let f = e.file_name().to_string_lossy().into_owned();
                f.starts_with(&format!(".{name}.tmp-"))
            })
            .count();
        assert_eq!(litter, 0, "temp files must not outlive the write");
        std::fs::remove_file(&p).ok();
    }
}
