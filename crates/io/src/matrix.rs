//! Binary matrix format (`.mat`): magic, dims, little-endian f32 data,
//! CRC32 footer.
//!
//! Version 2 (`DGNNMAT2`) appends a CRC32 over everything after the
//! magic, so truncation and bit flips surface as [`IoError::Corrupt`].
//! Legacy `DGNNMAT1` files (no checksum) still load. Writes go through
//! [`crate::atomic::atomic_write`] — a crash mid-save never leaves a
//! half-written matrix behind.

use crate::atomic::{atomic_write, crc32};
use crate::{corrupt_err, format_err, IoError};
use distgnn_tensor::Matrix;
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"DGNNMAT1";
const MAGIC_V2: &[u8; 8] = b"DGNNMAT2";

/// Writes `m` as magic + u64 rows + u64 cols + row-major f32 LE +
/// CRC32 (over dims and payload), atomically.
pub fn save_matrix(path: &Path, m: &Matrix) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(8 + 16 + m.as_slice().len() * 4 + 4);
    buf.extend_from_slice(MAGIC_V2);
    buf.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &x in m.as_slice() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    let crc = crc32(&buf[8..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    atomic_write(path, &buf)
}

/// Reads a matrix written by [`save_matrix`], bit-exactly, verifying
/// the checksum (v2) or accepting the legacy unchecksummed layout (v1).
pub fn load_matrix(path: &Path) -> Result<Matrix, IoError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return format_err("file too short for a matrix magic");
    }
    let (magic, rest) = bytes.split_at(8);
    let body = match magic {
        m if m == MAGIC_V2 => {
            if rest.len() < 4 {
                return corrupt_err("matrix truncated before its checksum");
            }
            let (body, footer) = rest.split_at(rest.len() - 4);
            let stored = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
            let actual = crc32(body);
            if stored != actual {
                return corrupt_err(format!(
                    "matrix checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ));
            }
            body
        }
        m if m == MAGIC_V1 => rest,
        _ => return format_err("not a DGNNMAT file"),
    };
    if body.len() < 16 {
        return corrupt_err("matrix truncated inside its dims header");
    }
    let rows = u64::from_le_bytes(body[0..8].try_into().expect("8-byte dim")) as usize;
    let cols = u64::from_le_bytes(body[8..16].try_into().expect("8-byte dim")) as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("dims overflow".into()))?;
    let payload = &body[16..];
    if payload.len() != count * 4 {
        return corrupt_err(format!(
            "truncated payload: expected {count} f32s, found {} bytes",
            payload.len()
        ));
    }
    let data = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;
    use distgnn_tensor::init::random_features;

    #[test]
    fn round_trips_bit_exactly() {
        let m = random_features(17, 9, 42);
        let p = temp_path("mat");
        save_matrix(&p, &m).unwrap();
        assert_eq!(load_matrix(&p).unwrap(), m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn preserves_special_values() {
        let m = Matrix::from_vec(1, 4, vec![f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-38]);
        let p = temp_path("mat-special");
        save_matrix(&p, &m).unwrap();
        let back = load_matrix(&p).unwrap();
        assert_eq!(back.as_slice()[0], f32::INFINITY);
        assert_eq!(back.as_slice()[1], f32::NEG_INFINITY);
        assert_eq!(back.as_slice()[2].to_bits(), (-0.0f32).to_bits());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn zero_sized_matrices_round_trip() {
        for m in [Matrix::zeros(0, 5), Matrix::zeros(5, 0)] {
            let p = temp_path("mat-zero");
            save_matrix(&p, &m).unwrap();
            assert_eq!(load_matrix(&p).unwrap().shape(), m.shape());
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let p = temp_path("mat-bad");
        std::fs::write(&p, b"NOTAMAT0").unwrap();
        assert!(matches!(load_matrix(&p), Err(IoError::Format(_)) | Err(IoError::Io(_))));
        let m = random_features(4, 4, 1);
        save_matrix(&p, &m).unwrap();
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 8]).unwrap();
        assert!(matches!(load_matrix(&p), Err(IoError::Corrupt(_))));
        std::fs::remove_file(&p).ok();
    }

    /// A single flipped payload bit fails the CRC — the corruption the
    /// v1 format silently loaded as wrong numbers.
    #[test]
    fn detects_bit_flips_in_the_payload() {
        let p = temp_path("mat-flip");
        save_matrix(&p, &random_features(6, 6, 7)).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = 8 + 16 + 40; // 10 floats into the payload
        bytes[mid] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_matrix(&p), Err(IoError::Corrupt(_))));
        std::fs::remove_file(&p).ok();
    }

    /// Legacy `DGNNMAT1` files (written before the checksum existed)
    /// still load bit-exactly.
    #[test]
    fn accepts_legacy_v1_files() {
        let m = random_features(3, 5, 11);
        let p = temp_path("mat-v1");
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DGNNMAT1");
        buf.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        buf.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        for &x in m.as_slice() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        std::fs::write(&p, &buf).unwrap();
        assert_eq!(load_matrix(&p).unwrap(), m);
        std::fs::remove_file(&p).ok();
    }
}
