//! Binary matrix format (`.mat`): magic, dims, little-endian f32 data.

use crate::{format_err, IoError};
use distgnn_tensor::Matrix;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DGNNMAT1";

/// Writes `m` as magic + u64 rows + u64 cols + row-major f32 LE.
pub fn save_matrix(path: &Path, m: &Matrix) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &x in m.as_slice() {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix written by [`save_matrix`], bit-exactly.
pub fn load_matrix(path: &Path) -> Result<Matrix, IoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return format_err("not a DGNNMAT1 file");
    }
    let mut dim = [0u8; 8];
    r.read_exact(&mut dim)?;
    let rows = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut dim)?;
    let cols = u64::from_le_bytes(dim) as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("dims overflow".into()))?;
    let mut bytes = vec![0u8; count * 4];
    r.read_exact(&mut bytes).map_err(|_| {
        IoError::Format(format!("truncated payload: expected {count} f32s"))
    })?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;
    use distgnn_tensor::init::random_features;

    #[test]
    fn round_trips_bit_exactly() {
        let m = random_features(17, 9, 42);
        let p = temp_path("mat");
        save_matrix(&p, &m).unwrap();
        assert_eq!(load_matrix(&p).unwrap(), m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn preserves_special_values() {
        let m = Matrix::from_vec(1, 4, vec![f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-38]);
        let p = temp_path("mat-special");
        save_matrix(&p, &m).unwrap();
        let back = load_matrix(&p).unwrap();
        assert_eq!(back.as_slice()[0], f32::INFINITY);
        assert_eq!(back.as_slice()[1], f32::NEG_INFINITY);
        assert_eq!(back.as_slice()[2].to_bits(), (-0.0f32).to_bits());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn zero_sized_matrices_round_trip() {
        for m in [Matrix::zeros(0, 5), Matrix::zeros(5, 0)] {
            let p = temp_path("mat-zero");
            save_matrix(&p, &m).unwrap();
            assert_eq!(load_matrix(&p).unwrap().shape(), m.shape());
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let p = temp_path("mat-bad");
        std::fs::write(&p, b"NOTAMAT0").unwrap();
        assert!(matches!(load_matrix(&p), Err(IoError::Format(_)) | Err(IoError::Io(_))));
        let m = random_features(4, 4, 1);
        save_matrix(&p, &m).unwrap();
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 8]).unwrap();
        assert!(matches!(load_matrix(&p), Err(IoError::Format(_))));
        std::fs::remove_file(&p).ok();
    }
}
