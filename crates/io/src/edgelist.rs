//! Text edge-list format (`.el`).

use crate::atomic::atomic_write;
use crate::{format_err, IoError};
use distgnn_graph::EdgeList;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Writes `edges` as `num_vertices num_edges\n` followed by one
/// `src dst` pair per line, atomically.
pub fn save_edge_list(path: &Path, edges: &EdgeList) -> Result<(), IoError> {
    let mut s = String::with_capacity(16 + edges.num_edges() * 12);
    let _ = writeln!(s, "{} {}", edges.num_vertices(), edges.num_edges());
    for (_, u, v) in edges.iter() {
        let _ = writeln!(s, "{u} {v}");
    }
    atomic_write(path, s.as_bytes())
}

/// Reads an edge list written by [`save_edge_list`]. Edge order (and
/// therefore edge ids) is preserved.
pub fn load_edge_list(path: &Path) -> Result<EdgeList, IoError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| IoError::Format("empty edge-list file".into()))?;
    let mut it = header.split_whitespace();
    let (n, m): (usize, usize) = match (it.next(), it.next()) {
        (Some(a), Some(b)) => (
            a.parse().map_err(|_| IoError::Format(format!("bad vertex count `{a}`")))?,
            b.parse().map_err(|_| IoError::Format(format!("bad edge count `{b}`")))?,
        ),
        _ => return format_err("header must be `num_vertices num_edges`"),
    };
    let mut edges = EdgeList::new(n);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v): (u32, u32) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (
                a.parse().map_err(|_| IoError::Format(format!("line {}: bad src", i + 2)))?,
                b.parse().map_err(|_| IoError::Format(format!("line {}: bad dst", i + 2)))?,
            ),
            _ => return format_err(format!("line {}: need `src dst`", i + 2)),
        };
        if (u as usize) >= n || (v as usize) >= n {
            return format_err(format!("line {}: endpoint out of range", i + 2));
        }
        edges.push(u, v);
    }
    if edges.num_edges() != m {
        return format_err(format!(
            "header promised {m} edges, file contains {}",
            edges.num_edges()
        ));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;

    #[test]
    fn round_trips_preserving_edge_order() {
        let e = EdgeList::from_pairs(5, &[(3, 1), (0, 4), (1, 2), (0, 4)]);
        let p = temp_path("el");
        save_edge_list(&p, &e).unwrap();
        let back = load_edge_list(&p).unwrap();
        assert_eq!(back, e);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let e = EdgeList::new(3);
        let p = temp_path("el-empty");
        save_edge_list(&p, &e).unwrap();
        assert_eq!(load_edge_list(&p).unwrap(), e);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        let p = temp_path("el-bad");
        std::fs::write(&p, "2 1\n0 5\n").unwrap();
        assert!(matches!(load_edge_list(&p), Err(IoError::Format(_))));
        std::fs::write(&p, "2 3\n0 1\n").unwrap();
        assert!(matches!(load_edge_list(&p), Err(IoError::Format(_))));
        std::fs::write(&p, "nonsense\n").unwrap();
        assert!(load_edge_list(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
