//! Versioned training-state checkpoints for crash recovery.
//!
//! A consistent distributed checkpoint is one [`TrainState`] per rank
//! (all captured at the same epoch barrier) plus a cluster `MANIFEST`.
//! Restoring every piece and replaying from the checkpoint epoch
//! reproduces a never-killed run bit-for-bit, which pins down exactly
//! what must be captured:
//!
//! - **model parameters** — the obvious part;
//! - **Adam moments and step count** — bias correction depends on the
//!   step count, so a resumed optimizer that reset `t` would take
//!   differently-sized steps;
//! - **cd-r DRPA caches** — each `(layer, peer)` route cache with its
//!   per-bin refresh epochs, so the resumed run replays the same
//!   staleness trajectory;
//! - **in-flight tagged messages** — the `cd-r` pipeline keeps up to
//!   `r` epochs of partial aggregates in the mail; they die with the
//!   crashed cluster and must be re-posted on restore.
//!
//! On disk, each rank's `rank-<r>.state` file carries a section table
//! (name, length, CRC32 per section) in its header, and the header
//! itself — magic through section table — is sealed by its own CRC32,
//! so no byte of the file escapes validation; the `MANIFEST`
//! lists every rank file with its whole-file CRC32. All writes are
//! atomic (temp + rename), and the checkpoint *directory* itself is
//! committed by renaming `ckpt-<epoch>.tmp/` to `ckpt-<epoch>/` — a
//! crash mid-checkpoint leaves no directory a loader would accept.

use crate::atomic::{atomic_write, crc32};
use crate::matrix::{load_matrix, save_matrix};
use crate::{corrupt_err, format_err, IoError};
use distgnn_nn::AdamState;
use distgnn_tensor::half::{bf16_to_f32, f32_to_bf16};
use distgnn_tensor::Matrix;
use std::path::{Path, PathBuf};

/// Current checkpoint format version; loaders reject anything else.
/// Version 2 added the `residual` section (error-feedback state), the
/// DRPA codec mirrors, and the header's encoding-mode flag. Version 3
/// added the membership generation — in the header and on each pending
/// outbox message — so an elastically resumed world can tell its own
/// traffic from a dead generation's.
pub const CHECKPOINT_VERSION: u32 = 3;

/// How the weight-bearing sections (`params`, `adam` moments) are
/// encoded on disk. The mode is stamped into the header, so a loader
/// always knows how to read the file back — but only
/// [`CheckpointMode::Lossless`] guarantees bit-exact resume; the bf16
/// mode halves those sections at a bounded relative rounding error
/// (|x − x̂| ≤ 2⁻⁸·|x|) and is strictly opt-in. Structural sections
/// (DRPA caches, outbox, residuals) are always lossless: they are
/// small, and corrupting comm state buys nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointMode {
    #[default]
    Lossless,
    /// Parameters and Adam moments stored as bf16 (2 bytes/value).
    LossyBf16,
}

impl CheckpointMode {
    fn flag(self) -> u32 {
        match self {
            CheckpointMode::Lossless => 0,
            CheckpointMode::LossyBf16 => 1,
        }
    }

    fn from_flag(flag: u32) -> Result<Self, IoError> {
        match flag {
            0 => Ok(CheckpointMode::Lossless),
            1 => Ok(CheckpointMode::LossyBf16),
            other => format_err(format!("unknown checkpoint mode flag {other}")),
        }
    }
}

const STATE_MAGIC: &[u8; 8] = b"DGNNCKPT";
const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "distgnn-checkpoint-manifest v1";

/// One cached DRPA route (the partial-aggregate rows one peer holds
/// for another), as serialized state: row-major data, per-row validity,
/// and the epoch each bin was last refreshed in.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouteCacheState {
    pub data: Vec<f32>,
    pub valid: Vec<bool>,
    pub bin_refresh: Vec<Option<u64>>,
}

/// The cd-r aggregator's cross-epoch state: `[layer][peer]` route
/// caches for the root-bound and leaf-bound directions. Empty for
/// `cd-0` / `0c` runs (those modes keep no cross-epoch comm state).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrpaState {
    pub root: Vec<Vec<RouteCacheState>>,
    pub leaf: Vec<Vec<RouteCacheState>>,
    /// Delta-codec sender mirrors, `[phase][layer][peer]` — the
    /// accumulated decoded deltas already shipped to each peer. Empty
    /// unless a lossy wire codec is active.
    pub codec_sent: Vec<Vec<Vec<Vec<f32>>>>,
    /// Delta-codec receiver accumulators, same shape as `codec_sent`.
    pub codec_recv: Vec<Vec<Vec<Vec<f32>>>>,
}

/// One in-flight tagged message, with its visibility delay re-based to
/// the checkpoint instant (see `comm`'s outbox export).
#[derive(Clone, Debug, PartialEq)]
pub struct PendingWire {
    pub dst: u64,
    pub tag: u64,
    pub remaining_delay: u64,
    /// Membership generation the message was posted under. A restore
    /// into a different generation (elastic resize, rank adoption)
    /// drops the message rather than deliver cross-world traffic.
    pub generation: u64,
    pub payload: Vec<f32>,
}

/// Everything one rank needs to resume training mid-run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainState {
    /// The next epoch to run (epochs `0..epoch` are complete).
    pub epoch: u64,
    pub rank: u32,
    pub ranks: u32,
    /// Membership generation of the world that wrote this state. Starts
    /// at 0 for a fresh cluster and increments on every membership
    /// change (elastic resize, rank adoption), so a resumed world never
    /// mistakes another generation's comm state for its own.
    pub generation: u64,
    pub params: Vec<f32>,
    pub adam: AdamState,
    pub drpa: DrpaState,
    pub outbox: Vec<PendingWire>,
    /// Error-feedback residuals, one buffer per compressed gradient
    /// stream (the flat gradient for blocking runs, one per layer for
    /// overlapped runs). Empty when no lossy codec is active. Resuming
    /// without these would silently drop the compression error carried
    /// forward from the checkpoint epoch, forking the trajectory.
    pub residuals: Vec<Vec<f32>>,
}

// ---------------------------------------------------------------------
// Flat little-endian encoding helpers.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.pos + n > self.buf.len() {
            return corrupt_err(format!(
                "{} truncated: wanted {n} bytes at offset {}, have {}",
                self.what,
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length prefix that must be satisfiable by the remaining bytes
    /// (guards against allocating absurd sizes from corrupt headers).
    fn len(&mut self, unit: usize) -> Result<usize, IoError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(unit) > self.buf.len() - self.pos {
            return corrupt_err(format!(
                "{}: length prefix {n} exceeds remaining bytes",
                self.what
            ));
        }
        Ok(n)
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, IoError> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn bf16s(&mut self, n: usize) -> Result<Vec<f32>, IoError> {
        let bytes = self.take(n * 2)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| bf16_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect())
    }

    fn bools(&mut self, n: usize) -> Result<Vec<bool>, IoError> {
        self.take(n)?
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                other => corrupt_err(format!("{}: invalid bool byte {other}", self.what)),
            })
            .collect()
    }

    fn done(&self) -> Result<(), IoError> {
        if self.pos != self.buf.len() {
            return corrupt_err(format!(
                "{}: {} trailing bytes after the payload",
                self.what,
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn put_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    buf.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_bf16s(buf: &mut Vec<u8>, xs: &[f32]) {
    buf.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for &x in xs {
        buf.extend_from_slice(&f32_to_bf16(x).to_le_bytes());
    }
}

/// `put_f32s` or `put_bf16s` per the checkpoint mode.
fn put_weights(buf: &mut Vec<u8>, xs: &[f32], mode: CheckpointMode) {
    match mode {
        CheckpointMode::Lossless => put_f32s(buf, xs),
        CheckpointMode::LossyBf16 => put_bf16s(buf, xs),
    }
}

fn read_weights(r: &mut Reader, mode: CheckpointMode) -> Result<Vec<f32>, IoError> {
    match mode {
        CheckpointMode::Lossless => {
            let n = r.len(4)?;
            r.f32s(n)
        }
        CheckpointMode::LossyBf16 => {
            let n = r.len(2)?;
            r.bf16s(n)
        }
    }
}

// ---------------------------------------------------------------------
// Section payloads.

fn encode_params(params: &[f32], mode: CheckpointMode) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + params.len() * 4);
    put_weights(&mut buf, params, mode);
    buf
}

fn decode_params(bytes: &[u8], mode: CheckpointMode) -> Result<Vec<f32>, IoError> {
    let mut r = Reader::new(bytes, "params section");
    let params = read_weights(&mut r, mode)?;
    r.done()?;
    Ok(params)
}

fn encode_adam(adam: &AdamState, mode: CheckpointMode) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&adam.t.to_le_bytes());
    buf.extend_from_slice(&(adam.slots.len() as u64).to_le_bytes());
    for slot in &adam.slots {
        match slot {
            None => buf.push(0),
            Some((m, v)) => {
                buf.push(1);
                put_weights(&mut buf, m, mode);
                put_weights(&mut buf, v, mode);
            }
        }
    }
    buf
}

fn decode_adam(bytes: &[u8], mode: CheckpointMode) -> Result<AdamState, IoError> {
    let mut r = Reader::new(bytes, "adam section");
    let t = r.u64()?;
    let nslots = r.len(1)?;
    let mut slots = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        let present = r.take(1)?[0];
        slots.push(match present {
            0 => None,
            1 => {
                let m = read_weights(&mut r, mode)?;
                let v = read_weights(&mut r, mode)?;
                if v.len() != m.len() {
                    return corrupt_err("adam section: m/v moment lengths differ");
                }
                Some((m, v))
            }
            other => return corrupt_err(format!("adam section: invalid slot flag {other}")),
        });
    }
    r.done()?;
    Ok(AdamState { t, slots })
}

fn encode_route_caches(buf: &mut Vec<u8>, caches: &[Vec<RouteCacheState>]) {
    buf.extend_from_slice(&(caches.len() as u64).to_le_bytes());
    for layer in caches {
        buf.extend_from_slice(&(layer.len() as u64).to_le_bytes());
        for c in layer {
            put_f32s(buf, &c.data);
            buf.extend_from_slice(&(c.valid.len() as u64).to_le_bytes());
            buf.extend(c.valid.iter().map(|&b| b as u8));
            buf.extend_from_slice(&(c.bin_refresh.len() as u64).to_le_bytes());
            for bin in &c.bin_refresh {
                match bin {
                    None => buf.push(0),
                    Some(e) => {
                        buf.push(1);
                        buf.extend_from_slice(&e.to_le_bytes());
                    }
                }
            }
        }
    }
}

fn decode_route_caches(r: &mut Reader) -> Result<Vec<Vec<RouteCacheState>>, IoError> {
    let nlayers = r.len(8)?;
    let mut out = Vec::with_capacity(nlayers);
    for _ in 0..nlayers {
        let npeers = r.len(1)?;
        let mut layer = Vec::with_capacity(npeers);
        for _ in 0..npeers {
            let ndata = r.len(4)?;
            let data = r.f32s(ndata)?;
            let nvalid = r.len(1)?;
            let valid = r.bools(nvalid)?;
            let nbins = r.len(1)?;
            let mut bin_refresh = Vec::with_capacity(nbins);
            for _ in 0..nbins {
                bin_refresh.push(match r.take(1)?[0] {
                    0 => None,
                    1 => Some(r.u64()?),
                    other => {
                        return corrupt_err(format!("drpa section: invalid bin flag {other}"))
                    }
                });
            }
            layer.push(RouteCacheState { data, valid, bin_refresh });
        }
        out.push(layer);
    }
    Ok(out)
}

fn encode_codec_mirrors(buf: &mut Vec<u8>, mirrors: &[Vec<Vec<Vec<f32>>>]) {
    buf.extend_from_slice(&(mirrors.len() as u64).to_le_bytes());
    for phase in mirrors {
        buf.extend_from_slice(&(phase.len() as u64).to_le_bytes());
        for layer in phase {
            buf.extend_from_slice(&(layer.len() as u64).to_le_bytes());
            for peer in layer {
                put_f32s(buf, peer);
            }
        }
    }
}

fn decode_codec_mirrors(r: &mut Reader) -> Result<Vec<Vec<Vec<Vec<f32>>>>, IoError> {
    let nphases = r.len(8)?;
    let mut out = Vec::with_capacity(nphases);
    for _ in 0..nphases {
        let nlayers = r.len(8)?;
        let mut phase = Vec::with_capacity(nlayers);
        for _ in 0..nlayers {
            let npeers = r.len(8)?;
            let mut layer = Vec::with_capacity(npeers);
            for _ in 0..npeers {
                let n = r.len(4)?;
                layer.push(r.f32s(n)?);
            }
            phase.push(layer);
        }
        out.push(phase);
    }
    Ok(out)
}

fn encode_drpa(drpa: &DrpaState) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_route_caches(&mut buf, &drpa.root);
    encode_route_caches(&mut buf, &drpa.leaf);
    encode_codec_mirrors(&mut buf, &drpa.codec_sent);
    encode_codec_mirrors(&mut buf, &drpa.codec_recv);
    buf
}

fn decode_drpa(bytes: &[u8]) -> Result<DrpaState, IoError> {
    let mut r = Reader::new(bytes, "drpa section");
    let root = decode_route_caches(&mut r)?;
    let leaf = decode_route_caches(&mut r)?;
    let codec_sent = decode_codec_mirrors(&mut r)?;
    let codec_recv = decode_codec_mirrors(&mut r)?;
    r.done()?;
    Ok(DrpaState { root, leaf, codec_sent, codec_recv })
}

fn encode_outbox(outbox: &[PendingWire]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(outbox.len() as u64).to_le_bytes());
    for m in outbox {
        buf.extend_from_slice(&m.dst.to_le_bytes());
        buf.extend_from_slice(&m.tag.to_le_bytes());
        buf.extend_from_slice(&m.remaining_delay.to_le_bytes());
        buf.extend_from_slice(&m.generation.to_le_bytes());
        put_f32s(&mut buf, &m.payload);
    }
    buf
}

fn decode_outbox(bytes: &[u8]) -> Result<Vec<PendingWire>, IoError> {
    let mut r = Reader::new(bytes, "outbox section");
    let n = r.len(32)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let dst = r.u64()?;
        let tag = r.u64()?;
        let remaining_delay = r.u64()?;
        let generation = r.u64()?;
        let np = r.len(4)?;
        out.push(PendingWire { dst, tag, remaining_delay, generation, payload: r.f32s(np)? });
    }
    r.done()?;
    Ok(out)
}

fn encode_residuals(residuals: &[Vec<f32>]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(residuals.len() as u64).to_le_bytes());
    for r in residuals {
        put_f32s(&mut buf, r);
    }
    buf
}

fn decode_residuals(bytes: &[u8]) -> Result<Vec<Vec<f32>>, IoError> {
    let mut r = Reader::new(bytes, "residual section");
    let n = r.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len(4)?;
        out.push(r.f32s(len)?);
    }
    r.done()?;
    Ok(out)
}

const SECTION_NAMES: [&[u8; 8]; 5] =
    [b"params\0\0", b"adam\0\0\0\0", b"drpa\0\0\0\0", b"outbox\0\0", b"residual"];

fn section_name(i: usize) -> String {
    String::from_utf8_lossy(SECTION_NAMES[i])
        .trim_end_matches('\0')
        .to_string()
}

// ---------------------------------------------------------------------
// Rank state files.

/// Writes one rank's [`TrainState`] atomically: magic, version, run
/// coordinates, a section table carrying each section's length and
/// CRC32, then the section payloads.
pub fn save_train_state(path: &Path, state: &TrainState) -> Result<(), IoError> {
    atomic_write(path, &encode_train_state(state))
}

/// [`save_train_state`] with an explicit [`CheckpointMode`].
pub fn save_train_state_mode(
    path: &Path,
    state: &TrainState,
    mode: CheckpointMode,
) -> Result<(), IoError> {
    atomic_write(path, &encode_train_state_mode(state, mode))
}

/// Serializes one rank's state to the checkpoint wire format without
/// touching the filesystem. The async checkpoint writer encodes on the
/// rank thread (cheap, deterministic) and ships the bytes to a
/// background thread for the write+fsync (expensive, off the critical
/// path); `encode` + [`atomic_write`] is byte-identical to
/// [`save_train_state`].
pub fn encode_train_state(state: &TrainState) -> Vec<u8> {
    encode_train_state_mode(state, CheckpointMode::Lossless)
}

/// [`encode_train_state`] with an explicit [`CheckpointMode`]; the mode
/// is stamped into the header so loaders decode symmetrically.
pub fn encode_train_state_mode(state: &TrainState, mode: CheckpointMode) -> Vec<u8> {
    let sections = [
        encode_params(&state.params, mode),
        encode_adam(&state.adam, mode),
        encode_drpa(&state.drpa),
        encode_outbox(&state.outbox),
        encode_residuals(&state.residuals),
    ];
    let mut buf = Vec::new();
    buf.extend_from_slice(STATE_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&mode.flag().to_le_bytes());
    buf.extend_from_slice(&state.epoch.to_le_bytes());
    buf.extend_from_slice(&state.rank.to_le_bytes());
    buf.extend_from_slice(&state.ranks.to_le_bytes());
    buf.extend_from_slice(&state.generation.to_le_bytes());
    buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in SECTION_NAMES.iter().zip(&sections) {
        buf.extend_from_slice(*name);
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    // Seal the header itself: epoch/rank/ranks and the section table
    // are what route every later read, and the section CRCs cannot
    // vouch for them.
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    for payload in &sections {
        buf.extend_from_slice(payload);
    }
    buf
}

/// Loads and fully validates one rank's state: bad magic and version
/// mismatches are format errors, any truncation or checksum mismatch is
/// [`IoError::Corrupt`] naming the damaged section.
pub fn load_train_state(path: &Path) -> Result<TrainState, IoError> {
    let bytes = std::fs::read(path)?;
    let mut r = Reader::new(&bytes, "checkpoint header");
    let magic = r
        .take(8)
        .map_err(|_| IoError::Format("file too short for a checkpoint magic".into()))?;
    if magic != STATE_MAGIC {
        return format_err("not a DGNNCKPT file");
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return format_err(format!(
            "unsupported checkpoint version {version} (supported: {CHECKPOINT_VERSION})"
        ));
    }
    let mode = CheckpointMode::from_flag(r.u32()?)?;
    let epoch = r.u64()?;
    let rank = r.u32()?;
    let ranks = r.u32()?;
    let generation = r.u64()?;
    let nsections = r.u32()? as usize;
    if nsections != SECTION_NAMES.len() {
        return format_err(format!(
            "expected {} sections, found {nsections}",
            SECTION_NAMES.len()
        ));
    }
    let mut table = Vec::with_capacity(nsections);
    for (i, expected) in SECTION_NAMES.iter().enumerate() {
        let name = r.take(8)?;
        if name != *expected {
            return format_err(format!("section {i} is not `{}`", section_name(i)));
        }
        let len = r.u64()? as usize;
        let crc = r.u32()?;
        table.push((len, crc));
    }
    let header_end = r.pos;
    let stored_header_crc = r.u32()?;
    let actual_header_crc = crc32(&bytes[..header_end]);
    if stored_header_crc != actual_header_crc {
        return corrupt_err(format!(
            "header checksum mismatch: stored {stored_header_crc:#010x}, \
             computed {actual_header_crc:#010x}"
        ));
    }
    let mut payloads = Vec::with_capacity(nsections);
    for (i, &(len, crc)) in table.iter().enumerate() {
        let payload = r
            .take(len)
            .map_err(|_| IoError::Corrupt(format!("section `{}` truncated", section_name(i))))?;
        let actual = crc32(payload);
        if actual != crc {
            return corrupt_err(format!(
                "section `{}` checksum mismatch: stored {crc:#010x}, computed {actual:#010x}",
                section_name(i)
            ));
        }
        payloads.push(payload);
    }
    r.done()?;
    Ok(TrainState {
        epoch,
        rank,
        ranks,
        generation,
        params: decode_params(payloads[0], mode)?,
        adam: decode_adam(payloads[1], mode)?,
        drpa: decode_drpa(payloads[2])?,
        outbox: decode_outbox(payloads[3])?,
        residuals: decode_residuals(payloads[4])?,
    })
}

// ---------------------------------------------------------------------
// Cluster manifests and checkpoint directories.

/// Writes the cluster `MANIFEST` into `dir`, recording the epoch, rank
/// count, and each rank file's size and CRC32. The manifest is the
/// loader's source of truth: a directory without a valid one is
/// treated as an incomplete (crashed) checkpoint.
pub fn save_cluster_manifest(dir: &Path, epoch: u64, ranks: usize) -> Result<(), IoError> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{MANIFEST_HEADER}");
    let _ = writeln!(s, "epoch {epoch}");
    let _ = writeln!(s, "ranks {ranks}");
    for r in 0..ranks {
        let name = format!("rank-{r}.state");
        let bytes = std::fs::read(dir.join(&name))?;
        let _ = writeln!(s, "file {name} bytes {} crc {:08x}", bytes.len(), crc32(&bytes));
    }
    atomic_write(&dir.join(MANIFEST_NAME), s.as_bytes())
}

struct Manifest {
    epoch: u64,
    files: Vec<(String, usize, u32)>,
}

fn load_manifest(dir: &Path) -> Result<Manifest, IoError> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_NAME))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return format_err("not a distgnn checkpoint manifest");
    }
    let field = |line: Option<&str>, key: &str| -> Result<u64, IoError> {
        line.and_then(|l| l.strip_prefix(key))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| IoError::Format(format!("manifest missing `{}` line", key.trim())))
    };
    let epoch = field(lines.next(), "epoch ")?;
    let ranks = field(lines.next(), "ranks ")? as usize;
    let mut files: Vec<(String, usize, u32)> = Vec::with_capacity(ranks);
    let mut seen = vec![false; ranks];
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["file", name, "bytes", len, "crc", crc] => {
                // Each entry must be `rank-<r>.state` for a unique r in
                // 0..ranks; anything else (a foreign file, a duplicate,
                // an out-of-range rank) makes the manifest untrustworthy
                // as a loader's source of truth.
                let rank: usize = name
                    .strip_prefix("rank-")
                    .and_then(|s| s.strip_suffix(".state"))
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        IoError::Format(format!("manifest entry `{name}` is not a rank file"))
                    })?;
                if rank >= ranks {
                    return format_err(format!(
                        "manifest entry `{name}`: rank {rank} out of range for {ranks} ranks"
                    ));
                }
                if std::mem::replace(&mut seen[rank], true) {
                    return format_err(format!("manifest lists rank {rank} twice"));
                }
                files.push((
                    name.to_string(),
                    len.parse()
                        .map_err(|_| IoError::Format(format!("bad manifest size `{len}`")))?,
                    u32::from_str_radix(crc, 16)
                        .map_err(|_| IoError::Format(format!("bad manifest crc `{crc}`")))?,
                ));
            }
            _ => return format_err(format!("bad manifest line `{line}`")),
        }
    }
    if files.len() != ranks {
        return format_err(format!(
            "manifest promises {ranks} rank files, lists {}",
            files.len()
        ));
    }
    // Uniqueness + range established above, so sorting by parsed rank id
    // puts entries in exact rank order whatever order they were listed.
    files.sort_by_key(|(name, _, _)| {
        name["rank-".len()..name.len() - ".state".len()]
            .parse::<usize>()
            .expect("validated above")
    });
    Ok(Manifest { epoch, files })
}

/// Loads a complete cluster checkpoint directory: validates the
/// manifest, every rank file's size and CRC, and cross-file consistency
/// (same epoch and generation, ranks numbered `0..k`). Returns the
/// states in rank order.
pub fn load_cluster_state(dir: &Path) -> Result<Vec<TrainState>, IoError> {
    load_cluster_state_for(dir, None)
}

/// [`load_cluster_state`] that also checks the checkpoint's world size
/// against the world the caller wants to run. A mismatch is a
/// [`IoError::Format`] error naming both sizes and pointing at the
/// elastic-resume path, since re-sharding — not plain resume — is how a
/// checkpoint crosses world sizes.
pub fn load_cluster_state_for(
    dir: &Path,
    requested_ranks: Option<usize>,
) -> Result<Vec<TrainState>, IoError> {
    let manifest = load_manifest(dir)?;
    if let Some(want) = requested_ranks {
        if manifest.files.len() != want {
            return format_err(format!(
                "checkpoint in {} holds a {}-rank world but {want} ranks were requested; \
                 pass --elastic-resume to merge and re-shard it for {want} ranks",
                dir.display(),
                manifest.files.len()
            ));
        }
    }
    let mut states: Vec<TrainState> = Vec::with_capacity(manifest.files.len());
    for (i, (name, len, crc)) in manifest.files.iter().enumerate() {
        let path = dir.join(name);
        let bytes = std::fs::read(&path)?;
        if bytes.len() != *len {
            return corrupt_err(format!(
                "{name}: manifest promises {len} bytes, file has {}",
                bytes.len()
            ));
        }
        let actual = crc32(&bytes);
        if actual != *crc {
            return corrupt_err(format!(
                "{name}: manifest crc {crc:08x}, file hashes to {actual:08x}"
            ));
        }
        let state = load_train_state(&path)?;
        if state.epoch != manifest.epoch {
            return format_err(format!(
                "{name} is from epoch {}, manifest says {}",
                state.epoch, manifest.epoch
            ));
        }
        if state.rank as usize != i || state.ranks as usize != manifest.files.len() {
            return format_err(format!(
                "{name} claims rank {}/{}, expected {i}/{}",
                state.rank,
                state.ranks,
                manifest.files.len()
            ));
        }
        if let Some(first) = states.first() {
            if state.generation != first.generation {
                return format_err(format!(
                    "{name} is from membership generation {}, rank 0 from {}",
                    state.generation, first.generation
                ));
            }
        }
        states.push(state);
    }
    Ok(states)
}

/// Committed checkpoint directories under `root` (`ckpt-<epoch>/` with
/// a `MANIFEST`), ascending by epoch. Incomplete or foreign directories
/// are skipped; a missing `root` is just an empty list.
pub fn list_checkpoints(root: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    let mut out: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let epoch: u64 = name.strip_prefix("ckpt-")?.parse().ok()?;
            let path = e.path();
            path.join(MANIFEST_NAME).exists().then_some((epoch, path))
        })
        .collect();
    out.sort();
    out
}

/// The newest committed checkpoint under `root`, if any.
pub fn latest_checkpoint(root: &Path) -> Option<(u64, PathBuf)> {
    list_checkpoints(root).pop()
}

// ---------------------------------------------------------------------
// Flat parameter dumps (the pre-recovery checkpoint format).

/// Saves a flat parameter buffer (one row, `params.len()` cols).
pub fn save_params(path: &Path, params: &[f32]) -> Result<(), IoError> {
    save_matrix(path, &Matrix::from_vec(1, params.len(), params.to_vec()))
}

/// Loads a flat parameter buffer written by [`save_params`].
pub fn load_params(path: &Path) -> Result<Vec<f32>, IoError> {
    let m = load_matrix(path)?;
    if m.rows() != 1 {
        return format_err(format!("parameter dump should be one row, has {}", m.rows()));
    }
    Ok(m.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;

    fn sample_state(rank: u32) -> TrainState {
        TrainState {
            epoch: 6,
            rank,
            ranks: 2,
            generation: 4,
            params: vec![0.5, -1.25, f32::MIN_POSITIVE, 3.0e7],
            adam: AdamState {
                t: 6,
                slots: vec![None, Some((vec![0.1, 0.2], vec![0.3, 0.4])), None],
            },
            drpa: DrpaState {
                root: vec![vec![RouteCacheState {
                    data: vec![1.0, 2.0, 3.0, 4.0],
                    valid: vec![true, false],
                    bin_refresh: vec![Some(5), None, Some(0)],
                }]],
                leaf: vec![vec![RouteCacheState::default()]],
                codec_sent: vec![vec![vec![vec![0.5, -2.0], vec![]]]],
                codec_recv: vec![vec![vec![vec![1.0], vec![7.5, 0.0, -0.25]]]],
            },
            outbox: vec![PendingWire {
                dst: 1,
                tag: 0x1234,
                remaining_delay: 2,
                generation: 4,
                payload: vec![9.0, -9.0],
            }],
            residuals: vec![vec![0.125, -4.5e-3], vec![], vec![1.0e9]],
        }
    }

    #[test]
    fn train_state_round_trips_bit_exactly() {
        let state = sample_state(0);
        let p = temp_path("state");
        save_train_state(&p, &state).unwrap();
        assert_eq!(load_train_state(&p).unwrap(), state);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_state_round_trips() {
        let state = TrainState { epoch: 0, rank: 0, ranks: 1, ..TrainState::default() };
        let p = temp_path("state-empty");
        save_train_state(&p, &state).unwrap();
        assert_eq!(load_train_state(&p).unwrap(), state);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn lossy_mode_bounds_weight_error_and_shrinks_the_file() {
        let state = sample_state(0);
        let p_exact = temp_path("state-exact");
        let p_lossy = temp_path("state-lossy");
        save_train_state(&p_exact, &state).unwrap();
        save_train_state_mode(&p_lossy, &state, CheckpointMode::LossyBf16).unwrap();
        let exact_len = std::fs::metadata(&p_exact).unwrap().len();
        let lossy_len = std::fs::metadata(&p_lossy).unwrap().len();
        assert!(lossy_len < exact_len, "bf16 mode must shrink: {lossy_len} vs {exact_len}");
        let loaded = load_train_state(&p_lossy).unwrap();
        // Weights round through bf16: bounded relative error, not exact.
        assert_eq!(loaded.params.len(), state.params.len());
        for (a, b) in loaded.params.iter().zip(&state.params) {
            assert!((a - b).abs() <= b.abs() * (1.0 / 256.0) + f32::MIN_POSITIVE);
        }
        // Structural sections stay bit-exact even in lossy mode.
        assert_eq!(loaded.drpa, state.drpa);
        assert_eq!(loaded.outbox, state.outbox);
        assert_eq!(loaded.residuals, state.residuals);
        assert_eq!(loaded.adam.t, state.adam.t);
        std::fs::remove_file(&p_exact).ok();
        std::fs::remove_file(&p_lossy).ok();
    }

    #[test]
    fn rejects_unknown_mode_flag() {
        let p = temp_path("state-mode");
        save_train_state(&p, &sample_state(0)).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[12] = 7; // low byte of the little-endian mode flag
        std::fs::write(&p, &bytes).unwrap();
        match load_train_state(&p) {
            Err(IoError::Format(m)) => assert!(m.contains("mode"), "got `{m}`"),
            other => panic!("expected a mode Format error, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_version_mismatch() {
        let p = temp_path("state-version");
        save_train_state(&p, &sample_state(0)).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[8] = 99; // low byte of the little-endian version field
        std::fs::write(&p, &bytes).unwrap();
        match load_train_state(&p) {
            Err(IoError::Format(m)) => assert!(m.contains("version"), "got `{m}`"),
            other => panic!("expected a version Format error, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_bit_flips_naming_the_section() {
        let p = temp_path("state-flip");
        save_train_state(&p, &sample_state(0)).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let idx = bytes.len() - 5; // inside the residual payload
        bytes[idx] ^= 0x80;
        std::fs::write(&p, &bytes).unwrap();
        match load_train_state(&p) {
            Err(IoError::Corrupt(m)) => assert!(m.contains("residual"), "got `{m}`"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_truncation() {
        let p = temp_path("state-trunc");
        save_train_state(&p, &sample_state(0)).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        for keep in [bytes.len() - 3, bytes.len() / 2, 20] {
            std::fs::write(&p, &bytes[..keep]).unwrap();
            assert!(
                matches!(load_train_state(&p), Err(IoError::Corrupt(_))),
                "prefix of {keep} bytes must be Corrupt"
            );
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn cluster_checkpoint_round_trips_through_manifest() {
        let dir = temp_path("ckpt-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let states = [sample_state(0), sample_state(1)];
        for s in &states {
            save_train_state(&dir.join(format!("rank-{}.state", s.rank)), s).unwrap();
        }
        save_cluster_manifest(&dir, 6, 2).unwrap();
        let loaded = load_cluster_state(&dir).unwrap();
        assert_eq!(loaded.as_slice(), states.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_catches_rank_file_corruption() {
        let dir = temp_path("ckpt-dir-bad");
        std::fs::create_dir_all(&dir).unwrap();
        for r in 0..2u32 {
            save_train_state(&dir.join(format!("rank-{r}.state")), &sample_state(r)).unwrap();
        }
        save_cluster_manifest(&dir, 6, 2).unwrap();
        // Corrupt rank 1 after the manifest was taken.
        let p = dir.join("rank-1.state");
        let mut bytes = std::fs::read(&p).unwrap();
        let idx = bytes.len() - 9;
        bytes[idx] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_cluster_state(&dir), Err(IoError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes states + a hand-crafted manifest listing `entries`
    /// (file-name strings; sizes and CRCs are taken from the real files
    /// when they exist, zeros otherwise).
    fn write_manifest_lines(dir: &std::path::Path, ranks: usize, entries: &[&str]) {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{MANIFEST_HEADER}");
        let _ = writeln!(s, "epoch 6");
        let _ = writeln!(s, "ranks {ranks}");
        for name in entries {
            let (len, crc) = match std::fs::read(dir.join(name)) {
                Ok(bytes) => (bytes.len(), crc32(&bytes)),
                Err(_) => (0, 0),
            };
            let _ = writeln!(s, "file {name} bytes {len} crc {crc:08x}");
        }
        std::fs::write(dir.join(MANIFEST_NAME), s).unwrap();
    }

    #[test]
    fn manifest_rejects_duplicate_rank_entries() {
        let dir = temp_path("ckpt-dup");
        std::fs::create_dir_all(&dir).unwrap();
        save_train_state(&dir.join("rank-0.state"), &sample_state(0)).unwrap();
        write_manifest_lines(&dir, 2, &["rank-0.state", "rank-0.state"]);
        match load_cluster_state(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("twice"), "got `{m}`"),
            other => panic!("expected a duplicate-rank Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_out_of_range_ranks_and_foreign_names() {
        let dir = temp_path("ckpt-range");
        std::fs::create_dir_all(&dir).unwrap();
        write_manifest_lines(&dir, 2, &["rank-0.state", "rank-5.state"]);
        match load_cluster_state(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("out of range"), "got `{m}`"),
            other => panic!("expected an out-of-range Format error, got {other:?}"),
        }
        write_manifest_lines(&dir, 2, &["rank-0.state", "weights.bin"]);
        match load_cluster_state(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("not a rank file"), "got `{m}`"),
            other => panic!("expected a foreign-name Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_entries_load_in_rank_order_even_when_listed_backwards() {
        let dir = temp_path("ckpt-reorder");
        std::fs::create_dir_all(&dir).unwrap();
        for r in 0..2u32 {
            save_train_state(&dir.join(format!("rank-{r}.state")), &sample_state(r)).unwrap();
        }
        write_manifest_lines(&dir, 2, &["rank-1.state", "rank-0.state"]);
        let states = load_cluster_state(&dir).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].rank, 0);
        assert_eq!(states[1].rank, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn world_size_mismatch_points_at_elastic_resume() {
        let dir = temp_path("ckpt-worldsize");
        std::fs::create_dir_all(&dir).unwrap();
        for r in 0..2u32 {
            save_train_state(&dir.join(format!("rank-{r}.state")), &sample_state(r)).unwrap();
        }
        save_cluster_manifest(&dir, 6, 2).unwrap();
        assert_eq!(load_cluster_state_for(&dir, Some(2)).unwrap().len(), 2);
        match load_cluster_state_for(&dir, Some(4)) {
            Err(IoError::Format(m)) => {
                assert!(m.contains("2-rank world"), "got `{m}`");
                assert!(m.contains("4 ranks were requested"), "got `{m}`");
                assert!(m.contains("--elastic-resume"), "got `{m}`");
            }
            other => panic!("expected an actionable Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_checkpoint_dir_is_an_io_error_not_a_panic() {
        let dir = temp_path("ckpt-empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load_cluster_state(&dir), Err(IoError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_rank_file_set_fails_to_load() {
        let dir = temp_path("ckpt-partial");
        std::fs::create_dir_all(&dir).unwrap();
        for r in 0..2u32 {
            save_train_state(&dir.join(format!("rank-{r}.state")), &sample_state(r)).unwrap();
        }
        save_cluster_manifest(&dir, 6, 2).unwrap();
        std::fs::remove_file(dir.join("rank-1.state")).unwrap();
        assert!(matches!(load_cluster_state(&dir), Err(IoError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_generation_rank_files_are_rejected() {
        let dir = temp_path("ckpt-gen-mix");
        std::fs::create_dir_all(&dir).unwrap();
        save_train_state(&dir.join("rank-0.state"), &sample_state(0)).unwrap();
        let stale = TrainState { generation: 3, ..sample_state(1) };
        save_train_state(&dir.join("rank-1.state"), &stale).unwrap();
        save_cluster_manifest(&dir, 6, 2).unwrap();
        match load_cluster_state(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("generation"), "got `{m}`"),
            other => panic!("expected a generation Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn listing_orders_by_epoch_and_skips_uncommitted() {
        let root = temp_path("ckpt-root");
        for epoch in [9u64, 3, 6] {
            let dir = root.join(format!("ckpt-{epoch}"));
            std::fs::create_dir_all(&dir).unwrap();
            save_train_state(
                &dir.join("rank-0.state"),
                &TrainState { epoch, rank: 0, ranks: 1, ..TrainState::default() },
            )
            .unwrap();
            save_cluster_manifest(&dir, epoch, 1).unwrap();
        }
        // An uncommitted (tmp) directory and junk are ignored.
        std::fs::create_dir_all(root.join("ckpt-12.tmp")).unwrap();
        std::fs::create_dir_all(root.join("scratch")).unwrap();
        let epochs: Vec<u64> = list_checkpoints(&root).into_iter().map(|(e, _)| e).collect();
        assert_eq!(epochs, vec![3, 6, 9]);
        assert_eq!(latest_checkpoint(&root).unwrap().0, 9);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_root_lists_empty() {
        assert!(list_checkpoints(&temp_path("ckpt-nowhere")).is_empty());
        assert!(latest_checkpoint(&temp_path("ckpt-nowhere2")).is_none());
    }

    #[test]
    fn flat_params_round_trip_through_a_model() {
        use distgnn_core::{GraphSage, SageConfig};
        let cfg = SageConfig::standard_shape(10, 4, 8, 3);
        let a = GraphSage::new(&cfg);
        let path = temp_path("ckpt-flat");
        save_params(&path, &a.write_params()).unwrap();
        let mut b = GraphSage::new(&SageConfig { seed: 99, ..cfg });
        assert_ne!(a.write_params(), b.write_params());
        let loaded = load_params(&path).unwrap();
        b.read_params(&loaded);
        assert_eq!(a.write_params(), b.write_params());
        std::fs::remove_file(&path).ok();
    }
}
