//! Model checkpoints: the flat parameter buffer with a shape guard.

use crate::matrix::{load_matrix, save_matrix};
use crate::IoError;
use distgnn_core::GraphSage;
use distgnn_tensor::Matrix;
use std::path::Path;

/// Saves `model`'s parameters (one row, `num_params` cols).
pub fn save_params(path: &Path, model: &GraphSage) -> Result<(), IoError> {
    let flat = model.write_params();
    save_matrix(path, &Matrix::from_vec(1, flat.len(), flat))
}

/// Loads a checkpoint into `model`; the parameter count must match the
/// model's architecture.
pub fn load_params(path: &Path, model: &mut GraphSage) -> Result<(), IoError> {
    let m = load_matrix(path)?;
    if m.cols() != model.num_params() || m.rows() != 1 {
        return Err(IoError::Format(format!(
            "checkpoint has {} params, model needs {}",
            m.rows() * m.cols(),
            model.num_params()
        )));
    }
    model.read_params(m.as_slice());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;
    use distgnn_core::SageConfig;

    #[test]
    fn checkpoint_round_trips() {
        let cfg = SageConfig::standard_shape(10, 4, 8, 3);
        let a = GraphSage::new(&cfg);
        let path = temp_path("ckpt");
        save_params(&path, &a).unwrap();
        let mut b = GraphSage::new(&SageConfig { seed: 99, ..cfg });
        assert_ne!(a.write_params(), b.write_params());
        load_params(&path, &mut b).unwrap();
        assert_eq!(a.write_params(), b.write_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = GraphSage::new(&SageConfig::standard_shape(10, 4, 8, 3));
        let path = temp_path("ckpt-mismatch");
        save_params(&path, &a).unwrap();
        let mut small = GraphSage::new(&SageConfig::standard_shape(6, 3, 4, 3));
        assert!(matches!(load_params(&path, &mut small), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }
}
