//! Background checkpoint writer: epoch snapshots off the critical path.
//!
//! The blocking cluster checkpoint stalls every rank for the full
//! serialize + write + fsync + vote protocol at the epoch boundary.
//! With the overlap engine the trainer instead encodes its
//! [`TrainState`](crate::checkpoint::TrainState) in memory (cheap,
//! deterministic) and hands the bytes to this writer; the write+fsync
//! and the commit rename happen on a dedicated background thread while
//! training continues into the next epoch.
//!
//! The vote-then-commit protocol is preserved in a different shape:
//! the writer groups submissions by epoch and commits — staging dir,
//! one `rank-<r>.state` per rank, manifest, atomic dir rename — only
//! once **all** ranks' payloads for that epoch arrived and every write
//! succeeded. A failed write aborts the whole epoch's snapshot (the
//! staging dir is removed, training is unaffected), so an observer
//! never sees a partial checkpoint: the same all-or-nothing guarantee
//! the blocking vote provides. The bounded submission channel holds at
//! most two epochs of encoded state (double buffering): a rank only
//! blocks on submit if the writer has fallen a full checkpoint period
//! behind the disk.
//!
//! Call [`AsyncCheckpointWriter::finish`] after the cluster threads
//! join and before inspecting the checkpoint store — it drains the
//! queue, so every submitted epoch is either committed or recorded as
//! failed. Because crash aborts are collective at epoch start, either
//! all ranks submit an epoch or none do; the set of committed
//! checkpoints a recovery supervisor can observe is therefore the same
//! as with the blocking protocol.

use crate::atomic::atomic_write;
use crate::checkpoint::save_cluster_manifest;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// One rank's encoded state for one epoch.
struct Job {
    epoch: u64,
    rank: usize,
    bytes: Vec<u8>,
}

/// What the writer thread did, returned by
/// [`AsyncCheckpointWriter::finish`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CheckpointWriterReport {
    /// Epochs committed (staging dir renamed to `ckpt-<epoch>`).
    pub committed: Vec<u64>,
    /// Epochs skipped because `ckpt-<epoch>` already existed (replay
    /// after a resume).
    pub skipped: Vec<u64>,
    /// Epochs whose snapshot aborted on a write error; no partial
    /// checkpoint remains on disk.
    pub failed: Vec<u64>,
}

/// Background writer for cluster checkpoints (see module docs).
pub struct AsyncCheckpointWriter {
    tx: Mutex<Option<SyncSender<Job>>>,
    handle: Option<JoinHandle<CheckpointWriterReport>>,
}

impl AsyncCheckpointWriter {
    /// Spawns the writer thread for a `ranks`-rank cluster whose
    /// checkpoint store lives under `root`.
    pub fn new(root: &Path, ranks: usize) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        let (tx, rx) = sync_channel::<Job>(2 * ranks);
        let root = root.to_path_buf();
        let handle = std::thread::spawn(move || {
            let mut pending: HashMap<u64, Vec<Option<Vec<u8>>>> = HashMap::new();
            let mut report = CheckpointWriterReport::default();
            for job in rx {
                let states = pending
                    .entry(job.epoch)
                    .or_insert_with(|| (0..ranks).map(|_| None).collect());
                states[job.rank] = Some(job.bytes);
                if states.iter().all(Option::is_some) {
                    let states = pending.remove(&job.epoch).expect("entry just filled");
                    commit_epoch(&root, job.epoch, states, &mut report);
                }
            }
            report
        });
        AsyncCheckpointWriter { tx: Mutex::new(Some(tx)), handle: Some(handle) }
    }

    /// Queues one rank's encoded state for `epoch`. Blocks only when
    /// the writer is two full epochs behind (double-buffer
    /// backpressure). Returns `false` if the writer thread is gone.
    pub fn submit(&self, epoch: u64, rank: usize, bytes: Vec<u8>) -> bool {
        let tx = self.tx.lock().expect("writer handle poisoned");
        match tx.as_ref() {
            Some(tx) => tx.send(Job { epoch, rank, bytes }).is_ok(),
            None => false,
        }
    }

    /// Closes the queue, drains it, and joins the writer thread. After
    /// this returns, every submitted epoch has been committed, skipped,
    /// or aborted — the checkpoint store is quiescent.
    pub fn finish(mut self) -> CheckpointWriterReport {
        self.tx.lock().expect("writer handle poisoned").take();
        match self.handle.take() {
            Some(h) => h.join().expect("checkpoint writer panicked"),
            None => CheckpointWriterReport::default(),
        }
    }
}

impl Drop for AsyncCheckpointWriter {
    fn drop(&mut self) {
        self.tx.lock().expect("writer handle poisoned").take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Writes and commits one epoch's snapshot: all-or-nothing, mirroring
/// the blocking vote-then-commit (a failed write removes the staging
/// dir instead of renaming it).
fn commit_epoch(
    root: &Path,
    epoch: u64,
    states: Vec<Option<Vec<u8>>>,
    report: &mut CheckpointWriterReport,
) {
    let committed: PathBuf = root.join(format!("ckpt-{epoch}"));
    if committed.exists() {
        // A resumed run replays epochs it already snapshotted; the
        // existing commit is authoritative (same reason the blocking
        // protocol's skip-vote exists).
        report.skipped.push(epoch);
        return;
    }
    let staging = root.join(format!("ckpt-{epoch}.tmp"));
    let _ = std::fs::remove_dir_all(&staging);
    let ranks = states.len();
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(&staging)?;
        for (rank, bytes) in states.iter().enumerate() {
            let bytes = bytes.as_ref().expect("commit only runs once all ranks arrived");
            atomic_write(&staging.join(format!("rank-{rank}.state")), bytes)
                .map_err(std::io::Error::other)?;
        }
        save_cluster_manifest(&staging, epoch, ranks).map_err(std::io::Error::other)?;
        std::fs::rename(&staging, &committed)
    };
    if write_all().is_ok() {
        report.committed.push(epoch);
    } else {
        let _ = std::fs::remove_dir_all(&staging);
        report.failed.push(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        encode_train_state, load_cluster_state, DrpaState, TrainState,
    };
    use distgnn_nn::AdamState;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("distgnn-async-writer-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(epoch: u64, rank: u32, ranks: u32) -> TrainState {
        TrainState {
            epoch,
            rank,
            ranks,
            generation: 0,
            params: vec![rank as f32, epoch as f32],
            adam: AdamState::default(),
            drpa: DrpaState::default(),
            outbox: Vec::new(),
            residuals: Vec::new(),
        }
    }

    #[test]
    fn commits_once_all_ranks_arrive_and_loads_back() {
        let dir = temp_dir("commit");
        let w = AsyncCheckpointWriter::new(&dir, 2);
        for epoch in [3u64, 6] {
            for rank in 0..2u32 {
                let s = state(epoch, rank, 2);
                assert!(w.submit(epoch, rank as usize, encode_train_state(&s)));
            }
        }
        let report = w.finish();
        assert_eq!(report.committed, vec![3, 6]);
        assert!(report.skipped.is_empty() && report.failed.is_empty());
        let loaded = load_cluster_state(&dir.join("ckpt-6")).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].params, vec![1.0, 6.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_epoch_never_commits() {
        let dir = temp_dir("incomplete");
        let w = AsyncCheckpointWriter::new(&dir, 2);
        let s = state(4, 0, 2);
        assert!(w.submit(4, 0, encode_train_state(&s)));
        let report = w.finish();
        assert!(report.committed.is_empty(), "half an epoch must not commit");
        assert!(!dir.join("ckpt-4").exists());
        assert!(!dir.join("ckpt-4.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn existing_commit_is_skipped_not_overwritten() {
        let dir = temp_dir("skip");
        let w = AsyncCheckpointWriter::new(&dir, 1);
        assert!(w.submit(2, 0, encode_train_state(&state(2, 0, 1))));
        assert_eq!(w.finish().committed, vec![2]);
        let before = std::fs::read(dir.join("ckpt-2/rank-0.state")).unwrap();

        let w = AsyncCheckpointWriter::new(&dir, 1);
        let mut other = state(2, 0, 1);
        other.params = vec![9.0, 9.0];
        assert!(w.submit(2, 0, encode_train_state(&other)));
        let report = w.finish();
        assert_eq!(report.skipped, vec![2]);
        assert_eq!(
            std::fs::read(dir.join("ckpt-2/rank-0.state")).unwrap(),
            before,
            "a replayed epoch must not rewrite the committed snapshot"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encode_matches_blocking_save_bytes() {
        let dir = temp_dir("bytes");
        let s = state(7, 0, 1);
        let path = dir.join("direct.state");
        crate::checkpoint::save_train_state(&path, &s).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            encode_train_state(&s),
            "encode + write must be byte-identical to save_train_state"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
