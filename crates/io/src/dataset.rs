//! Dataset directory format.
//!
//! ```text
//! <dir>/meta.txt      name / num_classes
//! <dir>/graph.el      edge list (edge ids preserved)
//! <dir>/features.mat  |V| x d features
//! <dir>/labels.txt    one label per line
//! <dir>/train.txt     train vertex ids, one per line
//! <dir>/test.txt      test vertex ids, one per line
//! ```

use crate::edgelist::{load_edge_list, save_edge_list};
use crate::matrix::{load_matrix, save_matrix};
use crate::atomic::atomic_write;
use crate::{format_err, IoError};
use distgnn_graph::{Csr, Dataset};
use std::fs;
use std::path::Path;

/// Saves `dataset` into directory `dir` (created if absent). Each file
/// is written atomically.
pub fn save_dataset(dir: &Path, dataset: &Dataset) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    atomic_write(
        &dir.join("meta.txt"),
        format!("name {}\nnum_classes {}\n", dataset.name, dataset.num_classes).as_bytes(),
    )?;
    save_edge_list(&dir.join("graph.el"), &dataset.graph.to_edge_list())?;
    save_matrix(&dir.join("features.mat"), &dataset.features)?;
    write_ids(&dir.join("labels.txt"), &dataset.labels)?;
    write_ids(&dir.join("train.txt"), &dataset.train_mask)?;
    write_ids(&dir.join("test.txt"), &dataset.test_mask)?;
    Ok(())
}

/// Loads a dataset saved by [`save_dataset`], validating consistency.
pub fn load_dataset(dir: &Path) -> Result<Dataset, IoError> {
    let meta = fs::read_to_string(dir.join("meta.txt"))?;
    let mut name = None;
    let mut num_classes = None;
    for line in meta.lines() {
        match line.split_once(' ') {
            Some(("name", v)) => name = Some(v.to_string()),
            Some(("num_classes", v)) => {
                num_classes = Some(
                    v.parse()
                        .map_err(|_| IoError::Format(format!("bad num_classes `{v}`")))?,
                )
            }
            _ => {}
        }
    }
    let (name, num_classes) = match (name, num_classes) {
        (Some(n), Some(c)) => (n, c),
        _ => return format_err("meta.txt must define name and num_classes"),
    };
    let edges = load_edge_list(&dir.join("graph.el"))?;
    let graph = Csr::from_edges(&edges);
    let features = load_matrix(&dir.join("features.mat"))?;
    if features.rows() != graph.num_vertices() {
        return format_err(format!(
            "features have {} rows but graph has {} vertices",
            features.rows(),
            graph.num_vertices()
        ));
    }
    let labels = read_ids(&dir.join("labels.txt"))?;
    if labels.len() != graph.num_vertices() {
        return format_err("label count does not match vertex count");
    }
    if labels.iter().any(|&l| l >= num_classes) {
        return format_err("label out of class range");
    }
    let train_mask = read_ids(&dir.join("train.txt"))?;
    let test_mask = read_ids(&dir.join("test.txt"))?;
    let n = graph.num_vertices();
    if train_mask.iter().chain(&test_mask).any(|&v| v >= n) {
        return format_err("mask vertex id out of range");
    }
    Ok(Dataset { name, graph, features, labels, num_classes, train_mask, test_mask })
}

fn write_ids(path: &Path, ids: &[usize]) -> Result<(), IoError> {
    let mut s = String::with_capacity(ids.len() * 7);
    for &v in ids {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    atomic_write(path, s.as_bytes())
}

fn read_ids(path: &Path) -> Result<Vec<usize>, IoError> {
    fs::read_to_string(path)?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.trim()
                .parse()
                .map_err(|_| IoError::Format(format!("bad id line `{l}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;
    use distgnn_graph::ScaledConfig;

    #[test]
    fn dataset_round_trips_completely() {
        let ds = Dataset::generate(&ScaledConfig::am_s().scaled_by(0.2));
        let dir = temp_path("dataset");
        save_dataset(&dir, &ds).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.graph, ds.graph);
        assert_eq!(back.features, ds.features);
        assert_eq!(back.labels, ds.labels);
        assert_eq!(back.num_classes, ds.num_classes);
        assert_eq!(back.train_mask, ds.train_mask);
        assert_eq!(back.test_mask, ds.test_mask);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_dataset_trains_identically() {
        use distgnn_core::single::{Trainer, TrainerConfig};
        use distgnn_kernels::AggregationConfig;
        let ds = Dataset::generate(&ScaledConfig::am_s().scaled_by(0.2));
        let dir = temp_path("dataset-train");
        save_dataset(&dir, &ds).unwrap();
        let back = load_dataset(&dir).unwrap();
        let cfg = TrainerConfig::for_dataset(&ds, AggregationConfig::baseline(), 3);
        let a = Trainer::run(&ds, &cfg);
        let b = Trainer::run(&back, &cfg);
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.loss, eb.loss, "loading must be lossless for training");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_inconsistencies() {
        let ds = Dataset::generate(&ScaledConfig::am_s().scaled_by(0.2));
        let dir = temp_path("dataset-bad");
        save_dataset(&dir, &ds).unwrap();
        // Corrupt: drop a label line.
        let labels = fs::read_to_string(dir.join("labels.txt")).unwrap();
        let truncated: String = labels.lines().skip(1).collect::<Vec<_>>().join("\n");
        fs::write(dir.join("labels.txt"), truncated).unwrap();
        assert!(matches!(load_dataset(&dir), Err(IoError::Format(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
