//! Observability for the DistGNN stack.
//!
//! Three layers, each usable on its own:
//!
//! * [`Recorder`] — a per-rank, preallocated, all-atomic event recorder.
//!   Span begin/end and counter events go into a fixed-capacity buffer
//!   (overflow drops events and bumps a counter; the buffer never grows),
//!   while per-phase running totals and per-epoch snapshots live in
//!   preallocated atomic slots. Zero heap allocation in steady state, and
//!   [`Recorder::disabled()`] compiles every call down to a branch.
//! * [`MetricsRegistry`] — a typed sink that absorbs the scattered counters
//!   of the stack (comm volumes/retries/staleness, kernel flop/byte
//!   estimates, replay accounting) plus the recorders' phase totals.
//! * Exporters ([`export`]) — Chrome `trace_event` JSON for Perfetto, a
//!   machine-readable per-epoch metrics JSON, and the human per-rank
//!   phase-breakdown table (the paper's Fig. 10/11 shape).
//!
//! The crate is a leaf: it depends only on `std`, so every other crate in
//! the workspace can depend on it.

pub mod export;
pub mod json;
pub mod recorder;
pub mod registry;

pub use export::{chrome_trace, metrics_json, phase_table, validate_trace, TraceError};
pub use recorder::{EpochPhases, RecordedEvent, Recorder, RecorderConfig, SpanGuard, TraceCounter};
pub use registry::{Metric, MetricsRegistry, RankMetrics};

use std::sync::Arc;
use std::time::Instant;

/// The phase taxonomy of one training step. Every instrumented interval in
/// the stack is attributed to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Model forward pass (aggregation excluded — that is [`Phase::Aggregate`]).
    Forward = 0,
    /// Loss + model backward pass.
    Backward = 1,
    /// Neighbourhood aggregation kernels (local LAT/RAT work).
    Aggregate = 2,
    /// Depositing outgoing partials / posting sends.
    CommSend = 3,
    /// Waiting on remote data: receive loops, reduce exchanges, retries,
    /// backoff rounds.
    CommWait = 4,
    /// Optimizer step (gradient flatten + Adam apply).
    Optimizer = 5,
    /// Checkpoint serialization + commit protocol.
    Checkpoint = 6,
    /// Pure synchronization waits (barrier rendezvous).
    Barrier = 7,
    /// Inference-side query execution: cache lookups, lazy final-layer
    /// re-aggregation on a stale row, and the batched dense layer.
    ServeQuery = 8,
    /// Inference-side graph-delta application: structural updates plus
    /// eager hidden-layer re-aggregation of the dirty set.
    ServeDelta = 9,
}

/// Number of [`Phase`] variants; sizes the per-phase atomic arrays.
pub const PHASE_COUNT: usize = 10;

/// All phases, in discriminant order (indexable by `phase as usize`).
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Forward,
    Phase::Backward,
    Phase::Aggregate,
    Phase::CommSend,
    Phase::CommWait,
    Phase::Optimizer,
    Phase::Checkpoint,
    Phase::Barrier,
    Phase::ServeQuery,
    Phase::ServeDelta,
];

/// Coarse grouping used by the end-of-run breakdown table and the paper's
/// compute/comm/idle figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    Compute,
    Comm,
    Idle,
    Io,
}

impl Phase {
    /// Stable display name (also the Chrome-trace event name).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Aggregate => "aggregate",
            Phase::CommSend => "comm_send",
            Phase::CommWait => "comm_wait",
            Phase::Optimizer => "optimizer",
            Phase::Checkpoint => "checkpoint",
            Phase::Barrier => "barrier",
            Phase::ServeQuery => "serve_query",
            Phase::ServeDelta => "serve_delta",
        }
    }

    pub const fn kind(self) -> PhaseKind {
        match self {
            Phase::Forward
            | Phase::Backward
            | Phase::Aggregate
            | Phase::Optimizer
            | Phase::ServeQuery
            | Phase::ServeDelta => PhaseKind::Compute,
            Phase::CommSend | Phase::CommWait => PhaseKind::Comm,
            Phase::Barrier => PhaseKind::Idle,
            Phase::Checkpoint => PhaseKind::Io,
        }
    }

    pub const fn from_index(i: usize) -> Option<Phase> {
        if i < PHASE_COUNT {
            Some(PHASES[i])
        } else {
            None
        }
    }
}

/// One recorder per rank, shared with the cluster threads via `Arc`.
///
/// The hub is created before `Cluster::run_with_telemetry` and read after
/// the run returns; the recorders themselves are `&self`-only (all-atomic),
/// so the same `Arc` is cloned into each rank closure.
pub struct TelemetryHub {
    ranks: Vec<Arc<Recorder>>,
}

impl TelemetryHub {
    /// A hub with `num_ranks` enabled recorders, all sharing `cfg` and a
    /// single monotonic origin (so cross-rank timestamps line up in the
    /// exported trace).
    pub fn new(num_ranks: usize, cfg: RecorderConfig) -> Self {
        let origin = Instant::now();
        TelemetryHub {
            ranks: (0..num_ranks)
                .map(|_| Arc::new(Recorder::with_origin(origin, cfg)))
                .collect(),
        }
    }

    /// A hub whose recorders are all disabled: every instrumentation call
    /// reduces to a single branch, and exporters see no data.
    pub fn disabled(num_ranks: usize) -> Self {
        TelemetryHub {
            ranks: (0..num_ranks).map(|_| Arc::new(Recorder::disabled())).collect(),
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn rank(&self, r: usize) -> &Arc<Recorder> {
        &self.ranks[r]
    }

    pub fn recorders(&self) -> &[Arc<Recorder>] {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_roundtrip() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert_eq!(Phase::from_index(i), Some(*p));
        }
        assert_eq!(Phase::from_index(PHASE_COUNT), None);
    }

    #[test]
    fn phase_kinds_cover_paper_breakdown() {
        assert_eq!(Phase::Forward.kind(), PhaseKind::Compute);
        assert_eq!(Phase::CommWait.kind(), PhaseKind::Comm);
        assert_eq!(Phase::Barrier.kind(), PhaseKind::Idle);
        assert_eq!(Phase::Checkpoint.kind(), PhaseKind::Io);
    }
}
