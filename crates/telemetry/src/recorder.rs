//! Per-rank event recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Zero heap allocation in steady state.** Everything is preallocated
//!    at construction: the event buffer, the per-phase totals, the
//!    per-epoch snapshot slots. When a buffer fills up, new entries are
//!    dropped and a counter is bumped — nothing ever grows.
//! 2. **`&self` everywhere.** Like `CommStats`, the recorder is all
//!    atomics so it can be shared behind an `Arc` with the rank closure
//!    (`Fn + Sync`). Each recorder is written by exactly one rank thread;
//!    `Relaxed` ordering suffices because readers only look after the
//!    cluster threads are joined.
//! 3. **Disabled is a branch.** [`Recorder::disabled()`] sets a flag that
//!    every method checks first; the buffers are empty, so a disabled
//!    recorder costs one predictable branch per call, mirroring
//!    `FaultPlan::none()`.
//!
//! ## Event model
//!
//! Three event kinds share one fixed-size slot format (3 × `u64`):
//! span **enter** and **exit** (payload = phase discriminant) and
//! **counter** ticks (payload = counter id, value). Timestamps are
//! nanoseconds from a per-recorder monotonic origin (`Instant`), so
//! cross-rank alignment inside one process is exact: the hub hands every
//! recorder the same origin.
//!
//! ## Exclusive leaf attribution
//!
//! Phases nest (e.g. `Aggregate` inside `Forward`, `Barrier` inside
//! `CommWait`), but the per-phase totals and the exported trace attribute
//! every nanosecond to exactly **one** phase: the innermost active one.
//! `enter` closes the current leaf segment against the parent phase;
//! `exit` closes it against the finished phase. Summing phase totals
//! therefore never double-counts, and reconstructed spans per rank are
//! non-overlapping by construction.

use crate::{Phase, PHASE_COUNT};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

/// Counters that appear on the timeline (Chrome `"C"` events), as opposed
/// to end-of-run registry metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceCounter {
    /// A comm retry round began (collective or tagged receive).
    Retry = 0,
    /// One backoff barrier was served while waiting to retry.
    Backoff = 1,
    /// An epoch was replayed after a restart.
    Replay = 2,
    /// A crashed rank's shard was adopted by the survivors (membership
    /// change, no world restart).
    Adoption = 3,
}

/// Number of [`TraceCounter`] variants.
pub const TRACE_COUNTER_COUNT: usize = 4;

impl TraceCounter {
    pub const fn name(self) -> &'static str {
        match self {
            TraceCounter::Retry => "retries",
            TraceCounter::Backoff => "backoff_barriers",
            TraceCounter::Replay => "epochs_replayed",
            TraceCounter::Adoption => "adoptions",
        }
    }

    pub const fn from_index(i: u64) -> Option<TraceCounter> {
        match i {
            0 => Some(TraceCounter::Retry),
            1 => Some(TraceCounter::Backoff),
            2 => Some(TraceCounter::Replay),
            3 => Some(TraceCounter::Adoption),
            _ => None,
        }
    }
}

const KIND_ENTER: u64 = 0;
const KIND_EXIT: u64 = 1;
const KIND_COUNTER: u64 = 2;

/// Maximum phase-nesting depth. Deeper pushes are dropped (counted).
const MAX_DEPTH: usize = 16;

/// One recorded event, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordedEvent {
    Enter { phase: Phase, ts_ns: u64 },
    Exit { phase: Phase, ts_ns: u64 },
    Counter { counter: TraceCounter, ts_ns: u64, value: u64 },
}

impl RecordedEvent {
    pub fn ts_ns(&self) -> u64 {
        match *self {
            RecordedEvent::Enter { ts_ns, .. }
            | RecordedEvent::Exit { ts_ns, .. }
            | RecordedEvent::Counter { ts_ns, .. } => ts_ns,
        }
    }
}

/// Phase totals for one finished epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPhases {
    pub epoch: u64,
    pub wall_ns: u64,
    pub phase_ns: [u64; PHASE_COUNT],
}

impl EpochPhases {
    /// Nanoseconds not attributed to any phase (untracked epoch time).
    pub fn other_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.phase_ns.iter().sum())
    }
}

/// Sizing knobs for a [`Recorder`]. Both buffers are fully preallocated.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Event slots (enter/exit/counter). 64 KiB slots ≈ 1.5 MiB per rank.
    pub event_capacity: usize,
    /// Per-epoch snapshot slots.
    pub epoch_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { event_capacity: 1 << 16, epoch_capacity: 1 << 10 }
    }
}

#[derive(Default)]
struct EventSlot {
    /// `kind << 32 | id` — id is the phase discriminant or counter id.
    word: AtomicU64,
    ts_ns: AtomicU64,
    value: AtomicU64,
}

#[derive(Default)]
struct EpochSlot {
    epoch: AtomicU64,
    wall_ns: AtomicU64,
    phase_ns: [AtomicU64; PHASE_COUNT],
}

/// See the module docs. Constructed once per rank, before the training
/// run; read after it.
pub struct Recorder {
    enabled: bool,
    origin: Instant,

    events: Vec<EventSlot>,
    /// Next free event slot; monotone (never wraps — overflow drops).
    cursor: AtomicUsize,
    events_dropped: AtomicU64,

    /// Innermost-active-phase stack (discriminants) + depth.
    stack: [AtomicU64; MAX_DEPTH],
    depth: AtomicUsize,
    /// Timestamp where the current leaf segment began.
    seg_start: AtomicU64,

    /// Running exclusive totals since construction.
    phase_ns: [AtomicU64; PHASE_COUNT],
    /// Completed span count per phase.
    phase_counts: [AtomicU64; PHASE_COUNT],
    /// Trace-counter running totals.
    counter_totals: [AtomicU64; TRACE_COUNTER_COUNT],

    /// Totals at the end of the previous epoch (for per-epoch deltas).
    epoch_mark: [AtomicU64; PHASE_COUNT],
    epoch_start_ns: AtomicU64,
    epochs: Vec<EpochSlot>,
    epoch_cursor: AtomicUsize,
    epochs_dropped: AtomicU64,
}

impl Recorder {
    pub fn new(cfg: RecorderConfig) -> Self {
        Self::build(true, Instant::now(), cfg)
    }

    /// Like [`Recorder::new`] but with a caller-supplied origin so all
    /// ranks of a hub share one timebase.
    pub fn with_origin(origin: Instant, cfg: RecorderConfig) -> Self {
        Self::build(true, origin, cfg)
    }

    /// A recorder that records nothing. Every method returns after one
    /// branch; no buffers are allocated.
    pub fn disabled() -> Self {
        Self::build(false, Instant::now(), RecorderConfig { event_capacity: 0, epoch_capacity: 0 })
    }

    fn build(enabled: bool, origin: Instant, cfg: RecorderConfig) -> Self {
        let mut events = Vec::new();
        let mut epochs = Vec::new();
        if enabled {
            events.resize_with(cfg.event_capacity, EventSlot::default);
            epochs.resize_with(cfg.epoch_capacity, EpochSlot::default);
        }
        Recorder {
            enabled,
            origin,
            events,
            cursor: AtomicUsize::new(0),
            events_dropped: AtomicU64::new(0),
            stack: Default::default(),
            depth: AtomicUsize::new(0),
            seg_start: AtomicU64::new(0),
            phase_ns: Default::default(),
            phase_counts: Default::default(),
            counter_totals: Default::default(),
            epoch_mark: Default::default(),
            epoch_start_ns: AtomicU64::new(0),
            epochs,
            epoch_cursor: AtomicUsize::new(0),
            epochs_dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    #[inline]
    fn push_event(&self, kind: u64, id: u64, ts_ns: u64, value: u64) {
        let i = self.cursor.load(Relaxed);
        if i >= self.events.len() {
            self.events_dropped.fetch_add(1, Relaxed);
            return;
        }
        let slot = &self.events[i];
        slot.word.store(kind << 32 | id, Relaxed);
        slot.ts_ns.store(ts_ns, Relaxed);
        slot.value.store(value, Relaxed);
        self.cursor.store(i + 1, Relaxed);
    }

    /// Close the current leaf segment at `now`, attributing it to the
    /// innermost active phase (if any), and start a new one.
    #[inline]
    fn roll_segment(&self, now: u64) {
        let d = self.depth.load(Relaxed);
        if d > 0 {
            let top = self.stack[d - 1].load(Relaxed) as usize;
            let start = self.seg_start.load(Relaxed);
            self.phase_ns[top].fetch_add(now.saturating_sub(start), Relaxed);
        }
        self.seg_start.store(now, Relaxed);
    }

    /// Begin a `phase` span. Prefer [`Recorder::scope`].
    #[inline]
    pub fn enter(&self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let now = self.now_ns();
        self.roll_segment(now);
        let d = self.depth.load(Relaxed);
        if d >= MAX_DEPTH {
            self.events_dropped.fetch_add(1, Relaxed);
            return;
        }
        self.stack[d].store(phase as u64, Relaxed);
        self.depth.store(d + 1, Relaxed);
        self.push_event(KIND_ENTER, phase as u64, now, 0);
    }

    /// End the innermost `phase` span.
    #[inline]
    pub fn exit(&self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let now = self.now_ns();
        let d = self.depth.load(Relaxed);
        if d == 0 {
            // Unbalanced exit (possible only after a dropped enter).
            self.events_dropped.fetch_add(1, Relaxed);
            return;
        }
        debug_assert_eq!(self.stack[d - 1].load(Relaxed), phase as u64, "unbalanced phase exit");
        self.roll_segment(now);
        self.depth.store(d - 1, Relaxed);
        self.phase_counts[phase as usize].fetch_add(1, Relaxed);
        self.push_event(KIND_EXIT, phase as u64, now, 0);
    }

    /// RAII span: enters `phase` now, exits when the guard drops.
    #[inline]
    pub fn scope(&self, phase: Phase) -> SpanGuard<'_> {
        self.enter(phase);
        SpanGuard { rec: self, phase }
    }

    /// Record a counter tick (timeline event + running total).
    #[inline]
    pub fn counter(&self, counter: TraceCounter, value: u64) {
        if !self.enabled {
            return;
        }
        self.counter_totals[counter as usize].fetch_add(value, Relaxed);
        self.push_event(KIND_COUNTER, counter as u64, self.now_ns(), value);
    }

    /// Close out epoch `epoch`: snapshot the per-phase deltas since the
    /// previous `end_epoch` into the next preallocated slot.
    pub fn end_epoch(&self, epoch: u64) {
        if !self.enabled {
            return;
        }
        let now = self.now_ns();
        // Fold the in-flight segment so the epoch sees up-to-date totals.
        self.roll_segment(now);
        let i = self.epoch_cursor.load(Relaxed);
        if i >= self.epochs.len() {
            self.epochs_dropped.fetch_add(1, Relaxed);
        } else {
            let slot = &self.epochs[i];
            slot.epoch.store(epoch, Relaxed);
            slot.wall_ns.store(now - self.epoch_start_ns.load(Relaxed), Relaxed);
            for p in 0..PHASE_COUNT {
                let total = self.phase_ns[p].load(Relaxed);
                slot.phase_ns[p].store(total - self.epoch_mark[p].load(Relaxed), Relaxed);
            }
            self.epoch_cursor.store(i + 1, Relaxed);
        }
        for p in 0..PHASE_COUNT {
            self.epoch_mark[p].store(self.phase_ns[p].load(Relaxed), Relaxed);
        }
        self.epoch_start_ns.store(now, Relaxed);
    }

    // ---- read-out (post-run) ----

    pub fn phase_ns(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|p| self.phase_ns[p].load(Relaxed))
    }

    pub fn phase_counts(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|p| self.phase_counts[p].load(Relaxed))
    }

    pub fn counter_total(&self, c: TraceCounter) -> u64 {
        self.counter_totals[c as usize].load(Relaxed)
    }

    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Relaxed)
    }

    pub fn epochs_dropped(&self) -> u64 {
        self.epochs_dropped.load(Relaxed)
    }

    pub fn num_events(&self) -> usize {
        self.cursor.load(Relaxed).min(self.events.len())
    }

    /// Decode recorded events in order. Allocates; post-run use only.
    pub fn events(&self) -> Vec<RecordedEvent> {
        (0..self.num_events())
            .filter_map(|i| {
                let slot = &self.events[i];
                let word = slot.word.load(Relaxed);
                let (kind, id) = (word >> 32, word & 0xffff_ffff);
                let ts_ns = slot.ts_ns.load(Relaxed);
                match kind {
                    KIND_ENTER => {
                        Phase::from_index(id as usize).map(|phase| RecordedEvent::Enter { phase, ts_ns })
                    }
                    KIND_EXIT => {
                        Phase::from_index(id as usize).map(|phase| RecordedEvent::Exit { phase, ts_ns })
                    }
                    _ => TraceCounter::from_index(id).map(|counter| RecordedEvent::Counter {
                        counter,
                        ts_ns,
                        value: slot.value.load(Relaxed),
                    }),
                }
            })
            .collect()
    }

    /// Per-epoch phase snapshots, in completion order. Allocates.
    pub fn epochs(&self) -> Vec<EpochPhases> {
        (0..self.epoch_cursor.load(Relaxed).min(self.epochs.len()))
            .map(|i| {
                let slot = &self.epochs[i];
                EpochPhases {
                    epoch: slot.epoch.load(Relaxed),
                    wall_ns: slot.wall_ns.load(Relaxed),
                    phase_ns: std::array::from_fn(|p| slot.phase_ns[p].load(Relaxed)),
                }
            })
            .collect()
    }
}

/// RAII guard from [`Recorder::scope`].
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    phase: Phase,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.rec.exit(self.phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let r = Recorder::disabled();
        r.enter(Phase::Forward);
        r.counter(TraceCounter::Retry, 3);
        r.exit(Phase::Forward);
        r.end_epoch(0);
        assert_eq!(r.num_events(), 0);
        assert_eq!(r.phase_ns(), [0; PHASE_COUNT]);
        assert_eq!(r.epochs().len(), 0);
        assert_eq!(r.events_dropped(), 0);
    }

    #[test]
    fn nesting_attributes_exclusively() {
        let r = Recorder::new(RecorderConfig::default());
        {
            let _f = r.scope(Phase::Forward);
            spin(Duration::from_millis(2));
            {
                let _a = r.scope(Phase::Aggregate);
                spin(Duration::from_millis(2));
            }
            spin(Duration::from_millis(1));
        }
        let ns = r.phase_ns();
        let fwd = ns[Phase::Forward as usize];
        let agg = ns[Phase::Aggregate as usize];
        assert!(fwd >= 2_500_000, "forward got {fwd}ns");
        assert!(agg >= 1_500_000, "aggregate got {agg}ns");
        // Exclusive: total tracked time ≈ wall time of the outer span, not 2×.
        let events = r.events();
        let (t0, t1) = (events.first().unwrap().ts_ns(), events.last().unwrap().ts_ns());
        let wall = t1 - t0;
        let tracked: u64 = ns.iter().sum();
        assert!(tracked <= wall + 100_000, "tracked {tracked} > wall {wall}");
        let counts = r.phase_counts();
        assert_eq!(counts[Phase::Forward as usize], 1);
        assert_eq!(counts[Phase::Aggregate as usize], 1);
    }

    #[test]
    fn overflow_drops_and_counts_without_growing() {
        let r = Recorder::new(RecorderConfig { event_capacity: 4, epoch_capacity: 1 });
        for _ in 0..8 {
            r.enter(Phase::Forward);
            r.exit(Phase::Forward);
        }
        assert_eq!(r.num_events(), 4);
        assert_eq!(r.events_dropped(), 12);
        // Totals keep accumulating even when the event log is full.
        assert_eq!(r.phase_counts()[Phase::Forward as usize], 8);
        r.end_epoch(0);
        r.end_epoch(1);
        assert_eq!(r.epochs().len(), 1);
        assert_eq!(r.epochs_dropped(), 1);
    }

    #[test]
    fn epoch_deltas_partition_totals() {
        let r = Recorder::new(RecorderConfig::default());
        for e in 0..3u64 {
            let _s = r.scope(Phase::Backward);
            spin(Duration::from_millis(1));
            drop(_s);
            r.end_epoch(e);
        }
        let epochs = r.epochs();
        assert_eq!(epochs.len(), 3);
        let per_epoch_sum: u64 = epochs.iter().map(|e| e.phase_ns[Phase::Backward as usize]).sum();
        assert_eq!(per_epoch_sum, r.phase_ns()[Phase::Backward as usize]);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.epoch, i as u64);
            assert!(e.wall_ns >= e.phase_ns.iter().sum());
        }
    }

    #[test]
    fn counters_total_and_log() {
        let r = Recorder::new(RecorderConfig::default());
        r.counter(TraceCounter::Retry, 1);
        r.counter(TraceCounter::Retry, 2);
        r.counter(TraceCounter::Backoff, 4);
        assert_eq!(r.counter_total(TraceCounter::Retry), 3);
        assert_eq!(r.counter_total(TraceCounter::Backoff), 4);
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[2],
            RecordedEvent::Counter { counter: TraceCounter::Backoff, value: 4, .. }
        ));
    }
}
