//! CI gate: `validate-trace <trace.json> [metrics.json]`.
//!
//! Exits non-zero unless the trace is a structurally valid Chrome
//! `trace_event` document with monotone, non-overlapping spans per rank
//! track (and, if given, the metrics file parses and carries the v1
//! schema tag).

use distgnn_telemetry::json;
use distgnn_telemetry::validate_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(trace_path) = args.next() else {
        eprintln!("usage: validate-trace <trace.json> [metrics.json]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(s) => {
            println!(
                "{trace_path}: OK — {} spans, {} counters, {} rank tracks",
                s.spans, s.counters, s.ranks
            );
            if s.spans == 0 {
                eprintln!("{trace_path}: trace contains no spans");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("{trace_path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(metrics_path) = args.next() {
        let text = match std::fs::read_to_string(&metrics_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("validate-trace: cannot read {metrics_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{metrics_path}: INVALID JSON — {e}");
                return ExitCode::FAILURE;
            }
        };
        match doc.get("schema").and_then(json::Value::as_str) {
            Some("distgnn-metrics-v1") => {
                let ranks = doc.get("ranks").and_then(json::Value::as_arr).map_or(0, <[_]>::len);
                println!("{metrics_path}: OK — schema distgnn-metrics-v1, {ranks} ranks");
            }
            other => {
                eprintln!("{metrics_path}: unexpected schema {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
