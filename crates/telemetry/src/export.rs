//! Exporters: Chrome `trace_event` JSON, per-epoch metrics JSON, and the
//! human phase-breakdown table.
//!
//! JSON is emitted by hand (the workspace has no serde); every key and
//! every name the exporters write is a static snake_case identifier, so
//! no string escaping is required. [`validate_trace`] re-parses a trace
//! with the in-crate [`json`](crate::json) parser and checks the
//! structural invariants CI relies on.

use crate::json::{self, Value};
use crate::recorder::RecordedEvent;
use crate::registry::{MetricsRegistry, METRICS};
use crate::{Phase, PhaseKind, TelemetryHub, PHASES, PHASE_COUNT};
use std::fmt::Write as _;

/// Render the hub's recorders as Chrome `trace_event` JSON
/// (`{"traceEvents": [...]}`), loadable in Perfetto / `chrome://tracing`.
///
/// Spans are the recorder's exclusive **leaf segments**: a nested phase
/// splits its parent, so each rank's track is a flat, non-overlapping
/// sequence (`pid` 0, `tid` = rank). Counter ticks become `"C"` events.
/// Timestamps are microseconds from the hub's shared monotonic origin.
pub fn chrome_trace(hub: &TelemetryHub) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for rank in 0..hub.num_ranks() {
        emit(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
        // Reconstruct leaf segments from the enter/exit log: each event
        // boundary closes the segment owned by the innermost open phase.
        let mut stack: Vec<Phase> = Vec::new();
        let mut seg_start = 0u64;
        let close = |phase: Phase, start: u64, end: u64, out: &mut String, first: &mut bool| {
            if end > start {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{rank}}}",
                        phase.name(),
                        us(start),
                        us(end - start)
                    ),
                    out,
                    first,
                );
            }
        };
        for ev in hub.rank(rank).events() {
            match ev {
                RecordedEvent::Enter { phase, ts_ns } => {
                    if let Some(&top) = stack.last() {
                        close(top, seg_start, ts_ns, &mut out, &mut first);
                    }
                    stack.push(phase);
                    seg_start = ts_ns;
                }
                RecordedEvent::Exit { phase, ts_ns } => {
                    close(phase, seg_start, ts_ns, &mut out, &mut first);
                    stack.pop();
                    seg_start = ts_ns;
                }
                RecordedEvent::Counter { counter, ts_ns, value } => {
                    emit(
                        format!(
                            "{{\"name\":\"rank{rank}/{}\",\"ph\":\"C\",\"ts\":{},\
                             \"pid\":0,\"args\":{{\"value\":{value}}}}}",
                            counter.name(),
                            us(ts_ns)
                        ),
                        &mut out,
                        &mut first,
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

/// ns → µs with sub-µs precision, trailing zeros trimmed so boundary
/// timestamps compare exactly equal after a JSON round-trip.
fn us(ns: u64) -> String {
    let s = format!("{}.{:03}", ns / 1000, ns % 1000);
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Machine-readable run report: per-rank scalar metrics, staleness
/// histogram, phase totals/counts, and per-epoch phase breakdowns, plus
/// cross-rank totals.
pub fn metrics_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("{\"schema\":\"distgnn-metrics-v1\",");
    let _ = write!(out, "\"num_ranks\":{},\"ranks\":[", reg.num_ranks());
    for r in 0..reg.num_ranks() {
        if r > 0 {
            out.push(',');
        }
        let rank = reg.rank(r);
        let _ = write!(out, "{{\"rank\":{r},\"metrics\":{{");
        for (i, m) in METRICS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", m.name(), rank.get(*m));
        }
        out.push_str("},\"staleness_hist\":[");
        for (i, v) in rank.stale_hist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"phase_totals_ns\":");
        push_phase_obj(&mut out, &rank.phase_ns);
        out.push_str(",\"phase_counts\":");
        push_phase_obj(&mut out, &rank.phase_counts);
        out.push_str(",\"epochs\":[");
        for (i, e) in rank.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"epoch\":{},\"wall_ns\":{},\"phases_ns\":", e.epoch, e.wall_ns);
            push_phase_obj(&mut out, &e.phase_ns);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("],\"totals\":{");
    for (i, m) in METRICS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", m.name(), reg.total(*m));
    }
    out.push_str(",\"staleness_hist\":[");
    for (i, v) in reg.total_stale_hist().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("]}}");
    out
}

fn push_phase_obj(out: &mut String, vals: &[u64; PHASE_COUNT]) {
    out.push('{');
    for (i, p) in PHASES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", p.name(), vals[i]);
    }
    out.push('}');
}

/// The end-of-run table: per-rank phase milliseconds plus the paper's
/// compute / comm / idle split (Figs. 10–11 shape). `Checkpoint` time is
/// reported as `io%`, untracked epoch time as `other%`.
pub fn phase_table(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("rank ");
    for p in PHASES {
        let _ = write!(out, "{:>11}", p.name());
    }
    out.push_str("   compute%   comm%   idle%    io%  other%\n");
    for r in 0..reg.num_ranks() {
        let rank = reg.rank(r);
        let _ = write!(out, "{r:>4} ");
        for p in 0..PHASE_COUNT {
            let _ = write!(out, "{:>9.1}ms", rank.phase_ns[p] as f64 / 1e6);
        }
        let tracked: u64 = rank.phase_ns.iter().sum();
        // Prefer epoch wall time (includes untracked gaps); a run with no
        // end_epoch calls falls back to the tracked total.
        let wall = rank.wall_ns().max(tracked);
        let mut by_kind = [0u64; 4]; // compute, comm, idle, io
        for (i, p) in PHASES.iter().enumerate() {
            let k = match p.kind() {
                PhaseKind::Compute => 0,
                PhaseKind::Comm => 1,
                PhaseKind::Idle => 2,
                PhaseKind::Io => 3,
            };
            by_kind[k] += rank.phase_ns[i];
        }
        let pct = |v: u64| if wall == 0 { 0.0 } else { 100.0 * v as f64 / wall as f64 };
        let _ = writeln!(
            out,
            "   {:>7.1}% {:>6.1}% {:>6.1}% {:>5.1}% {:>6.1}%",
            pct(by_kind[0]),
            pct(by_kind[1]),
            pct(by_kind[2]),
            pct(by_kind[3]),
            pct(wall - tracked.min(wall)),
        );
    }
    out
}

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Not parseable as JSON at all.
    Parse(String),
    /// Parseable, but not the shape we emit (missing/typed-wrong fields).
    Structure(String),
    /// Two `"X"` spans on one rank track overlap in time.
    Overlap { tid: u64, at_us: f64 },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(e) => write!(f, "trace is not valid JSON: {e}"),
            TraceError::Structure(e) => write!(f, "trace is malformed: {e}"),
            TraceError::Overlap { tid, at_us } => {
                write!(f, "overlapping spans on tid {tid} at {at_us}us")
            }
        }
    }
}

/// Summary returned by a successful [`validate_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// `"X"` span events.
    pub spans: usize,
    /// Counter events.
    pub counters: usize,
    /// Distinct rank tracks (tids) carrying spans.
    pub ranks: usize,
}

/// Validate an exported Chrome trace: a `traceEvents` array whose `"X"`
/// events carry numeric `ts`/`dur`/`pid`/`tid` and a known phase name,
/// and whose spans are monotone non-overlapping per rank track.
pub fn validate_trace(input: &str) -> Result<TraceSummary, TraceError> {
    let doc = json::parse(input).map_err(TraceError::Parse)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| TraceError::Structure("missing traceEvents array".into()))?;
    let known: Vec<&str> = PHASES.iter().map(|p| p.name()).collect();
    let mut spans = 0usize;
    let mut counters = 0usize;
    // (tid, end-of-last-span) — tids are small integers (ranks).
    let mut track_end: Vec<(u64, f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| TraceError::Structure(format!("event {i}: missing ph")))?;
        match ph {
            "X" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| TraceError::Structure(format!("event {i}: missing name")))?;
                if !known.contains(&name) {
                    return Err(TraceError::Structure(format!(
                        "event {i}: unknown phase '{name}'"
                    )));
                }
                let num = |key: &str| {
                    ev.get(key).and_then(Value::as_f64).ok_or_else(|| {
                        TraceError::Structure(format!("event {i}: missing numeric {key}"))
                    })
                };
                let ts = num("ts")?;
                let dur = num("dur")?;
                num("pid")?;
                let tid = num("tid")? as u64;
                if dur < 0.0 || ts < 0.0 {
                    return Err(TraceError::Structure(format!("event {i}: negative time")));
                }
                match track_end.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, end)) => {
                        // Sub-nanosecond slack: `ts + dur` accumulates f64
                        // rounding error at exactly-touching boundaries.
                        if ts < *end - 1e-6 {
                            return Err(TraceError::Overlap { tid, at_us: ts });
                        }
                        *end = ts + dur;
                    }
                    None => track_end.push((tid, ts + dur)),
                }
                spans += 1;
            }
            "C" => {
                ev.get("ts").and_then(Value::as_f64).ok_or_else(|| {
                    TraceError::Structure(format!("counter event {i}: missing ts"))
                })?;
                counters += 1;
            }
            "M" => {}
            other => {
                return Err(TraceError::Structure(format!("event {i}: unknown ph '{other}'")))
            }
        }
    }
    Ok(TraceSummary { spans, counters, ranks: track_end.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{RecorderConfig, TraceCounter};
    use crate::{Metric, Phase};
    use std::time::{Duration, Instant};

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    fn busy_hub() -> TelemetryHub {
        let hub = TelemetryHub::new(2, RecorderConfig::default());
        for r in 0..2 {
            let rec = hub.rank(r);
            for e in 0..2u64 {
                {
                    let _f = rec.scope(Phase::Forward);
                    spin(Duration::from_micros(200));
                    let _a = rec.scope(Phase::Aggregate);
                    spin(Duration::from_micros(200));
                }
                {
                    let _w = rec.scope(Phase::CommWait);
                    rec.counter(TraceCounter::Retry, 1);
                    spin(Duration::from_micros(100));
                }
                rec.end_epoch(e);
            }
        }
        hub
    }

    #[test]
    fn trace_round_trips_and_validates() {
        let hub = busy_hub();
        let trace = chrome_trace(&hub);
        let summary = validate_trace(&trace).unwrap();
        assert_eq!(summary.ranks, 2);
        assert_eq!(summary.counters, 2 * 2);
        // Per rank per epoch: forward split around aggregate (2 segments)
        // + aggregate + comm_wait = 4 leaf spans.
        assert_eq!(summary.spans, 2 * 2 * 4);
    }

    #[test]
    fn overlap_is_rejected() {
        let bad = r#"{"traceEvents":[
            {"name":"forward","cat":"phase","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},
            {"name":"backward","cat":"phase","ph":"X","ts":5,"dur":10,"pid":0,"tid":0}
        ]}"#;
        assert!(matches!(validate_trace(bad), Err(TraceError::Overlap { tid: 0, .. })));
        // Same times on different tids is fine.
        let ok = bad.replacen("\"tid\":0}", "\"tid\":1}", 1);
        assert!(validate_trace(&ok).is_ok());
    }

    #[test]
    fn structure_errors_are_caught() {
        assert!(matches!(validate_trace("not json"), Err(TraceError::Parse(_))));
        assert!(matches!(validate_trace("{}"), Err(TraceError::Structure(_))));
        let unknown = r#"{"traceEvents":[{"name":"mystery","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}"#;
        assert!(matches!(validate_trace(unknown), Err(TraceError::Structure(_))));
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        let hub = busy_hub();
        let mut reg = MetricsRegistry::new(2);
        for r in 0..2 {
            reg.absorb_recorder(r, hub.rank(r));
            reg.rank_mut(r).set(Metric::BytesSent, 1000 + r as u64);
            reg.rank_mut(r).stale_hist = vec![1, 0, 2];
        }
        let text = metrics_json(&reg);
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("num_ranks").unwrap().as_f64(), Some(2.0));
        let ranks = doc.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks.len(), 2);
        let r0 = &ranks[0];
        assert_eq!(
            r0.get("metrics").unwrap().get("bytes_sent").unwrap().as_f64(),
            Some(1000.0)
        );
        assert_eq!(r0.get("epochs").unwrap().as_arr().unwrap().len(), 2);
        let e0 = &r0.get("epochs").unwrap().as_arr().unwrap()[0];
        assert!(e0.get("phases_ns").unwrap().get("forward").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            doc.get("totals").unwrap().get("bytes_sent").unwrap().as_f64(),
            Some(2001.0)
        );
        let hist = doc.get("totals").unwrap().get("staleness_hist").unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn phase_table_shows_breakdown() {
        let hub = busy_hub();
        let mut reg = MetricsRegistry::new(2);
        for r in 0..2 {
            reg.absorb_recorder(r, hub.rank(r));
        }
        let table = phase_table(&reg);
        assert!(table.contains("compute%"));
        assert!(table.contains("forward"));
        // One header + one row per rank.
        assert_eq!(table.lines().count(), 3);
    }
}
