//! Minimal JSON parser, just enough to validate our own exports.
//!
//! The workspace has no serde (external crates are in-tree shims only),
//! and the exporters hand-roll their JSON; this parser closes the loop so
//! CI can check that an exported trace is structurally valid instead of
//! trusting the emitter. It is a straightforward recursive-descent parser
//! for RFC 8259 JSON with numbers parsed as `f64`.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogates (not emitted by our exporters) decode
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("control char in string".into()),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is valid &str).
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| "bad utf-8".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Value::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"traceEvents":[{"ph":"X","ts":1.5,"args":{}}],"n":2}"#).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn handles_unicode_passthrough() {
        assert_eq!(parse(r#""héllo – ∑""#).unwrap(), Value::Str("héllo – ∑".into()));
    }
}
