//! Typed end-of-run metrics registry.
//!
//! The stack accumulates counters in several places while training runs —
//! `CommStats` inside the cluster, kernel flop/byte estimates, replay
//! accounting in the recovery supervisor, drop counters inside each
//! [`Recorder`](crate::Recorder). The registry is where they all land
//! after the run, behind one typed API, so exporters and benchmarks have
//! a single source of truth. It is plain (non-atomic) data: it is built
//! once the cluster threads have joined, never on the hot path.

use crate::recorder::EpochPhases;
use crate::{Recorder, PHASE_COUNT};

/// Every scalar the stack knows how to report, per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Metric {
    // Comm volume (from `CommStats`).
    BytesSent = 0,
    BytesReceived = 1,
    MessagesSent = 2,
    // Fault-injection accounting.
    MessagesDropped = 3,
    MessagesDelayed = 4,
    MessagesReordered = 5,
    SendsStalled = 6,
    // Retry policy.
    RetriesAttempted = 7,
    BackoffBarriers = 8,
    // cd-r staleness.
    MaxStaleness = 9,
    StalenessViolations = 10,
    // Recorder health.
    EventsDropped = 11,
    // Kernel cost model (estimates; see `distgnn-kernels::cost`).
    KernelFlops = 12,
    KernelBytes = 13,
    // Recovery supervisor.
    Restarts = 14,
    EpochsReplayed = 15,
    // Handle-based async collectives (the overlap engine; zero on the
    // blocking paths).
    HandleOpsPosted = 16,
    HandleOpsCompleted = 17,
    HandleWaitNs = 18,
    HandleOverlapNs = 19,
    // Compressed communication: pre-codec (logical) byte volumes; the
    // plain BytesSent/BytesReceived report what crossed the wire.
    LogicalBytesSent = 20,
    LogicalBytesReceived = 21,
    // Elastic membership: crashed-rank shards adopted by survivors and
    // checkpointed in-flight messages dropped at restore for carrying a
    // dead generation's stamp.
    Adoptions = 22,
    StaleGenerationDropped = 23,
    // Serving (the `distgnn-serve` query engine).
    QueriesServed = 24,
    QueryBatches = 25,
    /// Final-layer aggregation-cache hits: queries answered from a row
    /// whose cached aggregate was still current.
    ServeCacheHits = 26,
    /// Queries that found a delta-invalidated row and re-aggregated it
    /// lazily before answering.
    ServeCacheMisses = 27,
    DeltasApplied = 28,
    /// Cached rows recomputed by the incremental re-aggregation engine
    /// (eager hidden-layer rows plus lazy final-layer rows).
    RowsReaggregated = 29,
}

/// Number of [`Metric`] variants.
pub const METRIC_COUNT: usize = 30;

/// All metrics, in discriminant order.
pub const METRICS: [Metric; METRIC_COUNT] = [
    Metric::BytesSent,
    Metric::BytesReceived,
    Metric::MessagesSent,
    Metric::MessagesDropped,
    Metric::MessagesDelayed,
    Metric::MessagesReordered,
    Metric::SendsStalled,
    Metric::RetriesAttempted,
    Metric::BackoffBarriers,
    Metric::MaxStaleness,
    Metric::StalenessViolations,
    Metric::EventsDropped,
    Metric::KernelFlops,
    Metric::KernelBytes,
    Metric::Restarts,
    Metric::EpochsReplayed,
    Metric::HandleOpsPosted,
    Metric::HandleOpsCompleted,
    Metric::HandleWaitNs,
    Metric::HandleOverlapNs,
    Metric::LogicalBytesSent,
    Metric::LogicalBytesReceived,
    Metric::Adoptions,
    Metric::StaleGenerationDropped,
    Metric::QueriesServed,
    Metric::QueryBatches,
    Metric::ServeCacheHits,
    Metric::ServeCacheMisses,
    Metric::DeltasApplied,
    Metric::RowsReaggregated,
];

impl Metric {
    /// Stable snake_case key used in the metrics JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::BytesSent => "bytes_sent",
            Metric::BytesReceived => "bytes_received",
            Metric::MessagesSent => "messages_sent",
            Metric::MessagesDropped => "messages_dropped",
            Metric::MessagesDelayed => "messages_delayed",
            Metric::MessagesReordered => "messages_reordered",
            Metric::SendsStalled => "sends_stalled",
            Metric::RetriesAttempted => "retries_attempted",
            Metric::BackoffBarriers => "backoff_barriers",
            Metric::MaxStaleness => "max_staleness",
            Metric::StalenessViolations => "staleness_violations",
            Metric::EventsDropped => "events_dropped",
            Metric::KernelFlops => "kernel_flops",
            Metric::KernelBytes => "kernel_bytes",
            Metric::Restarts => "restarts",
            Metric::EpochsReplayed => "epochs_replayed",
            Metric::HandleOpsPosted => "handle_ops_posted",
            Metric::HandleOpsCompleted => "handle_ops_completed",
            Metric::HandleWaitNs => "handle_wait_ns",
            Metric::HandleOverlapNs => "handle_overlap_ns",
            Metric::LogicalBytesSent => "logical_bytes_sent",
            Metric::LogicalBytesReceived => "logical_bytes_received",
            Metric::Adoptions => "adoptions",
            Metric::StaleGenerationDropped => "stale_generation_dropped",
            Metric::QueriesServed => "queries_served",
            Metric::QueryBatches => "query_batches",
            Metric::ServeCacheHits => "serve_cache_hits",
            Metric::ServeCacheMisses => "serve_cache_misses",
            Metric::DeltasApplied => "deltas_applied",
            Metric::RowsReaggregated => "rows_reaggregated",
        }
    }

    /// Whether cross-rank aggregation should take the max instead of the
    /// sum (true for high-water marks).
    pub const fn aggregate_by_max(self) -> bool {
        matches!(self, Metric::MaxStaleness)
    }
}

/// All metrics for one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    values: [u64; METRIC_COUNT],
    /// Staleness-age histogram (bucket = age in epochs, last saturates).
    pub stale_hist: Vec<u64>,
    /// Exclusive per-phase totals, ns (from the rank's recorder).
    pub phase_ns: [u64; PHASE_COUNT],
    /// Completed span count per phase.
    pub phase_counts: [u64; PHASE_COUNT],
    /// Per-epoch phase snapshots.
    pub epochs: Vec<EpochPhases>,
}

impl RankMetrics {
    pub fn get(&self, m: Metric) -> u64 {
        self.values[m as usize]
    }

    pub fn set(&mut self, m: Metric, v: u64) {
        self.values[m as usize] = v;
    }

    pub fn add(&mut self, m: Metric, v: u64) {
        self.values[m as usize] += v;
    }

    /// Wall time across recorded epochs, ns.
    pub fn wall_ns(&self) -> u64 {
        self.epochs.iter().map(|e| e.wall_ns).sum()
    }
}

/// Per-rank metrics for one training run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    ranks: Vec<RankMetrics>,
}

impl MetricsRegistry {
    pub fn new(num_ranks: usize) -> Self {
        MetricsRegistry { ranks: vec![RankMetrics::default(); num_ranks] }
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn rank(&self, r: usize) -> &RankMetrics {
        &self.ranks[r]
    }

    pub fn rank_mut(&mut self, r: usize) -> &mut RankMetrics {
        &mut self.ranks[r]
    }

    pub fn ranks(&self) -> &[RankMetrics] {
        &self.ranks
    }

    /// Cross-rank aggregate: sum, or max for high-water metrics.
    pub fn total(&self, m: Metric) -> u64 {
        if m.aggregate_by_max() {
            self.ranks.iter().map(|r| r.get(m)).max().unwrap_or(0)
        } else {
            self.ranks.iter().map(|r| r.get(m)).sum()
        }
    }

    /// Element-wise sum of the per-rank staleness histograms.
    pub fn total_stale_hist(&self) -> Vec<u64> {
        let len = self.ranks.iter().map(|r| r.stale_hist.len()).max().unwrap_or(0);
        let mut out = vec![0u64; len];
        for r in &self.ranks {
            for (dst, src) in out.iter_mut().zip(&r.stale_hist) {
                *dst += src;
            }
        }
        out
    }

    /// Pull phase totals, counts, per-epoch snapshots, and the drop
    /// counter out of rank `r`'s recorder.
    pub fn absorb_recorder(&mut self, r: usize, rec: &Recorder) {
        let rank = &mut self.ranks[r];
        rank.phase_ns = rec.phase_ns();
        rank.phase_counts = rec.phase_counts();
        rank.epochs = rec.epochs();
        rank.set(Metric::EventsDropped, rec.events_dropped() + rec.epochs_dropped());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderConfig;
    use crate::Phase;

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<_> = METRICS.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_COUNT);
        for (i, m) in METRICS.iter().enumerate() {
            assert_eq!(*m as usize, i);
        }
    }

    #[test]
    fn totals_sum_except_high_water() {
        let mut reg = MetricsRegistry::new(3);
        for (r, v) in [(0usize, 10u64), (1, 20), (2, 5)] {
            reg.rank_mut(r).set(Metric::BytesSent, v);
            reg.rank_mut(r).set(Metric::MaxStaleness, v);
        }
        assert_eq!(reg.total(Metric::BytesSent), 35);
        assert_eq!(reg.total(Metric::MaxStaleness), 20);
    }

    #[test]
    fn histograms_sum_elementwise() {
        let mut reg = MetricsRegistry::new(2);
        reg.rank_mut(0).stale_hist = vec![1, 2, 3];
        reg.rank_mut(1).stale_hist = vec![4, 0, 1, 9];
        assert_eq!(reg.total_stale_hist(), vec![5, 2, 4, 9]);
    }

    #[test]
    fn absorbs_recorder_state() {
        let rec = Recorder::new(RecorderConfig { event_capacity: 2, epoch_capacity: 8 });
        for e in 0..2 {
            let _s = rec.scope(Phase::Forward);
            drop(_s);
            rec.end_epoch(e);
        }
        let mut reg = MetricsRegistry::new(1);
        reg.absorb_recorder(0, &rec);
        let r = reg.rank(0);
        assert_eq!(r.phase_counts[Phase::Forward as usize], 2);
        assert_eq!(r.epochs.len(), 2);
        assert!(r.get(Metric::EventsDropped) > 0, "tiny buffer must have dropped");
    }
}
