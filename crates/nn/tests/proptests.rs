//! Property tests for the NN substrate.

use distgnn_nn::linear::Linear;
use distgnn_nn::{masked_cross_entropy, Adam, AdamConfig, Sgd};
use distgnn_tensor::{init, Matrix};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_forward_is_affine(x in arb_matrix(4, 3), seed in 0u64..100) {
        // f(a + b) - f(b) == f(a) - f(0)  (bias cancels).
        let l = Linear::new(3, 2, &mut init::rng(seed));
        let zero = Matrix::zeros(4, 3);
        let mut sum = x.clone();
        distgnn_tensor::ops::add_assign(&mut sum, &x);
        let lhs_a = l.forward(&sum);
        let lhs_b = l.forward(&x);
        let rhs_a = l.forward(&x);
        let rhs_b = l.forward(&zero);
        for i in 0..4 {
            for j in 0..2 {
                let lhs = lhs_a[(i, j)] - lhs_b[(i, j)];
                let rhs = rhs_a[(i, j)] - rhs_b[(i, j)];
                prop_assert!((lhs - rhs).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn linear_gradients_check_against_finite_difference(
        seed in 0u64..50,
        rows in 1usize..5,
    ) {
        let l = Linear::new(3, 2, &mut init::rng(seed));
        let x = init::uniform(rows, 3, -1.0, 1.0, &mut init::rng(seed ^ 1));
        let grads = l.backward(&x, &Matrix::full(rows, 2, 1.0));
        let err = distgnn_nn::gradcheck::max_grad_error(
            &grads.grad_input, &x, 1e-2,
            |xp| l.forward(xp).as_slice().iter().sum(),
        );
        prop_assert!(err < 2e-2, "max grad error {err}");
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grad_sums_zero(
        logits in arb_matrix(6, 4),
        seed in 0u64..100,
    ) {
        let labels: Vec<usize> = (0..6).map(|i| ((i as u64 + seed) % 4) as usize).collect();
        let ce = masked_cross_entropy(&logits, &labels, &[]);
        prop_assert!(ce.loss >= 0.0);
        for r in 0..6 {
            let s: f32 = ce.grad_logits.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn sgd_with_zero_lr_is_identity(p0 in proptest::collection::vec(-3.0f32..3.0, 1..10)) {
        let sgd = Sgd::new(0.0, 0.0);
        let mut p = p0.clone();
        let g: Vec<f32> = p0.iter().map(|x| x * 2.0 + 1.0).collect();
        sgd.step(&mut p, &g);
        prop_assert_eq!(p, p0);
    }

    #[test]
    fn adam_steps_are_bounded_by_lr(
        grads in proptest::collection::vec(-100.0f32..100.0, 1..8),
        lr in 0.001f32..0.1,
    ) {
        // Adam's per-step displacement is ~lr regardless of grad scale.
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.0, ..AdamConfig::with_lr(lr) });
        let mut p = vec![0.0f32; grads.len()];
        adam.begin_step();
        adam.step(0, &mut p, &grads);
        for (i, (&x, &g)) in p.iter().zip(&grads).enumerate() {
            if g.abs() > 1e-3 {
                prop_assert!(x.abs() <= lr * 1.1, "param {i}: step {x} exceeds lr {lr}");
            }
        }
    }

    #[test]
    fn training_a_linear_separator_converges(seed in 0u64..30) {
        // 2-class toy problem: label = sign of x0. A single linear
        // layer + CE must fit it from any seed.
        let mut rng = init::rng(seed);
        let x = init::uniform(40, 2, -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..40).map(|i| usize::from(x[(i, 0)] > 0.0)).collect();
        let mut l = Linear::new(2, 2, &mut rng);
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.0, ..AdamConfig::with_lr(0.1) });
        let mut last = f32::MAX;
        for _ in 0..150 {
            let logits = l.forward(&x);
            let ce = masked_cross_entropy(&logits, &labels, &[]);
            let g = l.backward(&x, &ce.grad_logits);
            adam.begin_step();
            adam.step(0, l.weight.as_mut_slice(), g.grad_weight.as_slice());
            adam.step(1, &mut l.bias, &g.grad_bias);
            last = ce.loss;
        }
        prop_assert!(last < 0.3, "loss stuck at {last}");
    }
}
