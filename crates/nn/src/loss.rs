//! Masked softmax cross-entropy.
//!
//! Full-batch GNN training computes logits for every vertex but only
//! the labelled training vertices contribute to the loss; the mask
//! selects them. The backward pass is fused (softmax − one-hot), which
//! is both faster and numerically cleaner than differentiating softmax
//! and NLL separately.

use distgnn_tensor::{softmax, Matrix};

/// Loss value and ready-made logits gradient.
#[derive(Clone, Debug)]
pub struct CrossEntropyResult {
    /// Mean negative log-likelihood over the masked rows.
    pub loss: f32,
    /// Gradient w.r.t. the logits; zero outside the mask.
    pub grad_logits: Matrix,
}

/// Computes masked softmax cross-entropy.
///
/// An empty `mask` means "all rows".
///
/// # Panics
/// Panics if label/row counts disagree or a label is out of range.
pub fn masked_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    mask: &[usize],
) -> CrossEntropyResult {
    let mut probs = Matrix::zeros(logits.rows(), logits.cols());
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let loss = masked_cross_entropy_into(logits, labels, mask, &mut probs, &mut grad);
    CrossEntropyResult { loss, grad_logits: grad }
}

/// [`masked_cross_entropy`] into caller-owned buffers: `probs` holds
/// the row softmax (scratch, same shape as `logits`) and `grad` the
/// logits gradient. Returns the loss. Allocation-free, so training
/// epochs can reuse both matrices.
pub fn masked_cross_entropy_into(
    logits: &Matrix,
    labels: &[usize],
    mask: &[usize],
    probs: &mut Matrix,
    grad: &mut Matrix,
) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    assert_eq!(grad.shape(), logits.shape(), "grad buffer shape mismatch");
    let count = if mask.is_empty() { logits.rows() } else { mask.len() };
    assert!(count > 0, "cannot compute loss over an empty selection");
    let n = count as f32;
    softmax::softmax_rows_into(logits, probs);
    grad.fill_zero();
    let mut loss = 0.0f32;
    let mut row = |v: usize, grad: &mut Matrix| {
        let label = labels[v];
        assert!(label < logits.cols(), "label {label} out of range");
        let p = probs.row(v);
        loss -= (p[label].max(1e-12)).ln();
        let grow = grad.row_mut(v);
        for (j, (&pj, g)) in p.iter().zip(grow.iter_mut()).enumerate() {
            *g = (pj - if j == label { 1.0 } else { 0.0 }) / n;
        }
    };
    if mask.is_empty() {
        for v in 0..logits.rows() {
            row(v, grad);
        }
    } else {
        for &v in mask {
            row(v, grad);
        }
    }
    loss / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Matrix::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]);
        let r = masked_cross_entropy(&logits, &[0, 1], &[]);
        assert!(r.loss < 1e-4, "loss {}", r.loss);
    }

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(3, 4);
        let r = masked_cross_entropy(&logits, &[0, 1, 2], &[]);
        assert!((r.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn mask_restricts_rows() {
        let logits = Matrix::from_vec(2, 2, vec![10.0, -10.0, 10.0, -10.0]);
        // Row 1 is wrong but excluded by the mask.
        let r = masked_cross_entropy(&logits, &[0, 1], &[0]);
        assert!(r.loss < 1e-4);
        assert!(r.grad_logits.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(3, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0, 0.3, 0.3, 0.3]);
        let labels = [2usize, 0, 1];
        let mask = [0usize, 2];
        let r = masked_cross_entropy(&logits, &labels, &mask);
        let fd = finite_diff(&logits, 1e-2, |l| masked_cross_entropy(l, &labels, &mask).loss);
        assert!(r.grad_logits.approx_eq(&fd, 1e-2));
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let r = masked_cross_entropy(&logits, &[1, 2], &[]);
        for v in 0..2 {
            let s: f32 = r.grad_logits.row(v).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Matrix::zeros(1, 2);
        let _ = masked_cross_entropy(&logits, &[5], &[]);
    }
}
