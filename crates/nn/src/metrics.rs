//! Classification metrics beyond plain accuracy.
//!
//! The GNN benchmark leaderboards report micro/macro F1 alongside
//! accuracy (GraphSAGE's original Reddit results are micro-F1), so the
//! evaluation harness exposes both.

use distgnn_tensor::{reduce, Matrix};

/// Per-class confusion counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    pub true_pos: Vec<u64>,
    pub false_pos: Vec<u64>,
    pub false_neg: Vec<u64>,
}

/// Builds confusion counts for `num_classes` classes over `mask`
/// (empty mask = all rows).
pub fn confusion(
    logits: &Matrix,
    labels: &[usize],
    mask: &[usize],
    num_classes: usize,
) -> Confusion {
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    let preds = reduce::row_argmax(logits);
    let mut c = Confusion {
        true_pos: vec![0; num_classes],
        false_pos: vec![0; num_classes],
        false_neg: vec![0; num_classes],
    };
    let all: Vec<usize>;
    let rows: &[usize] = if mask.is_empty() {
        all = (0..labels.len()).collect();
        &all
    } else {
        mask
    };
    for &v in rows {
        let (p, t) = (preds[v], labels[v]);
        assert!(t < num_classes, "label out of range");
        if p == t {
            c.true_pos[t] += 1;
        } else {
            if p < num_classes {
                c.false_pos[p] += 1;
            }
            c.false_neg[t] += 1;
        }
    }
    c
}

/// Micro-averaged F1 (= accuracy for single-label classification).
pub fn micro_f1(c: &Confusion) -> f64 {
    let tp: u64 = c.true_pos.iter().sum();
    let fp: u64 = c.false_pos.iter().sum();
    let fal_n: u64 = c.false_neg.iter().sum();
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fal_n) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Macro-averaged F1: unweighted mean of per-class F1 over classes
/// that appear (tp + fn > 0).
pub fn macro_f1(c: &Confusion) -> f64 {
    let mut sum = 0.0;
    let mut classes = 0usize;
    for k in 0..c.true_pos.len() {
        let (tp, fp, fal_n) = (c.true_pos[k], c.false_pos[k], c.false_neg[k]);
        if tp + fal_n == 0 {
            continue;
        }
        classes += 1;
        if tp == 0 {
            continue;
        }
        let p = tp as f64 / (tp + fp) as f64;
        let r = tp as f64 / (tp + fal_n) as f64;
        sum += 2.0 * p * r / (p + r);
    }
    if classes == 0 {
        0.0
    } else {
        sum / classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[usize], k: usize) -> Matrix {
        let mut m = Matrix::zeros(preds.len(), k);
        for (r, &p) in preds.iter().enumerate() {
            m[(r, p)] = 1.0;
        }
        m
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let labels = [0usize, 1, 2, 1];
        let logits = logits_for(&labels, 3);
        let c = confusion(&logits, &labels, &[], 3);
        assert!((micro_f1(&c) - 1.0).abs() < 1e-12);
        assert!((macro_f1(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_equals_accuracy_for_single_label() {
        let labels = [0usize, 1, 1, 0];
        let logits = logits_for(&[0, 0, 1, 1], 2); // 2 of 4 correct
        let c = confusion(&logits, &labels, &[], 2);
        assert!((micro_f1(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_class_failure() {
        // Class 1 appears once and is always missed; class 0 perfect.
        let labels = [0usize, 0, 0, 1];
        let logits = logits_for(&[0, 0, 0, 0], 2);
        let c = confusion(&logits, &labels, &[], 2);
        let micro = micro_f1(&c);
        let macro_ = macro_f1(&c);
        assert!(macro_ < micro, "macro {macro_} vs micro {micro}");
    }

    #[test]
    fn mask_restricts_evaluation() {
        let labels = [0usize, 1];
        let logits = logits_for(&[0, 0], 2); // second is wrong
        let c = confusion(&logits, &labels, &[0], 2);
        assert!((micro_f1(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_are_skipped_in_macro() {
        let labels = [0usize, 0];
        let logits = logits_for(&[0, 0], 5);
        let c = confusion(&logits, &labels, &[], 5);
        assert!((macro_f1(&c) - 1.0).abs() < 1e-12);
    }
}
