//! Minimal neural-network substrate for GraphSAGE full-batch training.
//!
//! The paper delegates its dense layers to PyTorch; this crate is the
//! Rust equivalent sized for the task: linear layers with explicit
//! backprop, masked softmax cross-entropy, SGD and Adam optimizers
//! (with the paper's weight decay, `wd = 5e-4`), and a
//! finite-difference gradient checker the test suite leans on.
//!
//! Explicit layer-by-layer backprop (rather than a tape autograd)
//! mirrors how full-batch GNN systems are actually structured: the
//! model is a fixed stack of aggregate→linear→ReLU blocks, and each
//! block caches exactly the activations its backward pass needs.

pub mod gradcheck;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod optim;

pub use linear::Linear;
pub use loss::{masked_cross_entropy, masked_cross_entropy_into, CrossEntropyResult};
pub use optim::{Adam, AdamConfig, AdamState, Sgd};
