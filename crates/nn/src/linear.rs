//! Fully-connected layer with explicit backward pass.
//!
//! Both passes have `_into` variants writing into caller-owned buffers
//! so training epochs can reuse one [`LinearGrads`] per layer instead
//! of reallocating every step.

use distgnn_tensor::{
    init, matmul_a_bt_into, matmul_at_b_into, matmul_into, ops, Matrix,
};

/// `z = x · W + b`, Xavier-initialized.
#[derive(Clone, Debug)]
pub struct Linear {
    /// `in_dim x out_dim` weights.
    pub weight: Matrix,
    /// `out_dim` bias.
    pub bias: Vec<f32>,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Clone, Debug)]
pub struct LinearGrads {
    pub grad_input: Matrix,
    pub grad_weight: Matrix,
    pub grad_bias: Vec<f32>,
}

impl LinearGrads {
    /// Zeroed gradient buffers shaped for `layer` applied to `rows`
    /// input rows — the reusable target of [`Linear::backward_into`].
    pub fn zeros_for(layer: &Linear, rows: usize) -> Self {
        LinearGrads {
            grad_input: Matrix::zeros(rows, layer.in_dim()),
            grad_weight: Matrix::zeros(layer.in_dim(), layer.out_dim()),
            grad_bias: vec![0.0; layer.out_dim()],
        }
    }
}

impl Linear {
    /// New layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut init::InitRng) -> Self {
        Linear {
            weight: init::xavier_uniform(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
        }
    }

    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass. Callers keep `input` around for the backward pass.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut z = Matrix::zeros(input.rows(), self.out_dim());
        self.forward_into(input, &mut z);
        z
    }

    /// [`Self::forward`] into a caller-owned `rows x out_dim` buffer
    /// (contents overwritten); allocation-free.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        matmul_into(input, &self.weight, out);
        ops::add_bias(out, &self.bias);
    }

    /// [`Self::forward_into`] over the first `rows` rows of `input` and
    /// `out` only. The serving batch executor sizes its buffers once for
    /// `max_batch` and pushes every smaller batch through this entry
    /// point, so steady-state batches allocate nothing regardless of
    /// batch size. Computed rows are bit-identical to [`Self::forward_into`].
    pub fn forward_prefix_into(&self, input: &Matrix, rows: usize, out: &mut Matrix) {
        distgnn_tensor::matmul_prefix_into(input, rows, &self.weight, out);
        ops::add_bias_prefix(out, rows, &self.bias);
    }

    /// Backward pass given the cached forward `input` and the gradient
    /// of the loss w.r.t. this layer's output.
    pub fn backward(&self, input: &Matrix, grad_output: &Matrix) -> LinearGrads {
        let mut grads = LinearGrads::zeros_for(self, input.rows());
        let mut scratch = Vec::new();
        self.backward_into(input, grad_output, &mut grads, &mut scratch);
        grads
    }

    /// [`Self::backward`] into caller-owned gradient buffers (see
    /// [`LinearGrads::zeros_for`]). `scratch` holds the weight-gradient
    /// partials and is grown on first use; with a retained `grads` +
    /// `scratch` pair, steady-state calls are allocation-free.
    pub fn backward_into(
        &self,
        input: &Matrix,
        grad_output: &Matrix,
        grads: &mut LinearGrads,
        scratch: &mut Vec<f32>,
    ) {
        assert_eq!(grad_output.cols(), self.out_dim(), "grad_output width");
        assert_eq!(input.rows(), grad_output.rows(), "row count mismatch");
        matmul_a_bt_into(grad_output, &self.weight, &mut grads.grad_input);
        matmul_at_b_into(input, grad_output, &mut grads.grad_weight, scratch);
        ops::column_sums_into(grad_output, &mut grads.grad_bias);
    }

    /// Number of scalar parameters (for AllReduce buffer sizing).
    pub fn num_params(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }

    /// Serializes parameters into `out` (weights row-major, then bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Loads parameters from `src`, returning the number consumed.
    pub fn read_params(&mut self, src: &[f32]) -> usize {
        let nw = self.weight.rows() * self.weight.cols();
        let nb = self.bias.len();
        assert!(src.len() >= nw + nb, "parameter buffer too short");
        self.weight.as_mut_slice().copy_from_slice(&src[..nw]);
        self.bias.copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use distgnn_tensor::init::rng;

    #[test]
    fn forward_matches_hand_computation() {
        let mut l = Linear::new(2, 2, &mut rng(0));
        l.weight = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        l.bias = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let z = l.forward(&x);
        assert_eq!(z.row(0), &[3.5, 7.5]);
    }

    #[test]
    fn backward_grad_input_matches_finite_difference() {
        let l = Linear::new(3, 2, &mut rng(1));
        let x = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.3);
        // Loss = sum(forward(x)); grad_output = ones.
        let grads = l.backward(&x, &Matrix::full(4, 2, 1.0));
        let fd = finite_diff(&x, 1e-2, |xp| l.forward(xp).as_slice().iter().sum());
        assert!(grads.grad_input.approx_eq(&fd, 1e-2), "{:?} vs {:?}", grads.grad_input, fd);
    }

    #[test]
    fn backward_grad_weight_matches_finite_difference() {
        let l = Linear::new(2, 3, &mut rng(2));
        let x = Matrix::from_fn(5, 2, |r, c| ((r + c) % 3) as f32 * 0.5 - 0.4);
        let grads = l.backward(&x, &Matrix::full(5, 3, 1.0));
        let fd = finite_diff(&l.weight, 1e-2, |w| {
            let mut l2 = l.clone();
            l2.weight = w.clone();
            l2.forward(&x).as_slice().iter().sum()
        });
        assert!(grads.grad_weight.approx_eq(&fd, 1e-2));
    }

    #[test]
    fn grad_bias_is_column_sum() {
        let l = Linear::new(2, 2, &mut rng(3));
        let g = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Matrix::zeros(3, 2);
        let grads = l.backward(&x, &g);
        assert_eq!(grads.grad_bias, vec![9.0, 12.0]);
    }

    #[test]
    fn params_round_trip() {
        let l = Linear::new(4, 3, &mut rng(4));
        let mut buf = Vec::new();
        l.write_params(&mut buf);
        assert_eq!(buf.len(), l.num_params());
        let mut l2 = Linear::new(4, 3, &mut rng(5));
        let consumed = l2.read_params(&buf);
        assert_eq!(consumed, l.num_params());
        assert_eq!(l2.weight, l.weight);
        assert_eq!(l2.bias, l.bias);
    }
}
