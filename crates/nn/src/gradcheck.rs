//! Finite-difference gradient checking.

use distgnn_tensor::Matrix;

/// Central-difference gradient of scalar `loss(x)` w.r.t. every element
/// of `x`. O(|x|) loss evaluations — test-sized inputs only.
pub fn finite_diff(x: &Matrix, eps: f32, mut loss: impl FnMut(&Matrix) -> f32) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            grad[(r, c)] = (loss(&xp) - loss(&xm)) / (2.0 * eps);
        }
    }
    grad
}

/// Maximum absolute deviation between an analytic gradient and its
/// finite-difference estimate.
pub fn max_grad_error(analytic: &Matrix, x: &Matrix, eps: f32, loss: impl FnMut(&Matrix) -> f32) -> f32 {
    let fd = finite_diff(x, eps, loss);
    analytic
        .as_slice()
        .iter()
        .zip(fd.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_is_2x() {
        let x = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let g = finite_diff(&x, 1e-3, |m| m.as_slice().iter().map(|v| v * v).sum());
        for c in 0..3 {
            assert!((g[(0, c)] - 2.0 * x[(0, c)]).abs() < 1e-2);
        }
    }

    #[test]
    fn max_grad_error_flags_wrong_gradient() {
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let analytic_ok = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        let analytic_bad = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let loss = |m: &Matrix| m.as_slice().iter().map(|v| v * v).sum::<f32>();
        assert!(max_grad_error(&analytic_ok, &x, 1e-3, loss) < 1e-2);
        assert!(max_grad_error(&analytic_bad, &x, 1e-3, loss) > 1.0);
    }
}
