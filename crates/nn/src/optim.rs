//! SGD and Adam optimizers with decoupled weight decay.
//!
//! Both operate on flat parameter slices so the distributed trainer can
//! serialize a model into one buffer, AllReduce the gradients, and step
//! every replica identically (DESIGN.md invariant 5). Adam keeps one
//! `(m, v)` state pair per registered slot.

/// Plain SGD: `p -= lr * (g + wd * p)`.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    pub lr: f32,
    pub weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Sgd { lr, weight_decay }
    }

    pub fn step(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }
}

/// Adam hyperparameters. Defaults match the paper's training setup
/// (`wd = 5e-4`) with standard betas.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl AdamConfig {
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 5e-4 }
    }
}

/// Adam with per-slot first/second moment state.
#[derive(Clone, Debug)]
pub struct Adam {
    pub config: AdamConfig,
    state: Vec<Option<(Vec<f32>, Vec<f32>)>>,
    t: u64,
}

impl Adam {
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, state: Vec::new(), t: 0 }
    }

    /// Advances the shared timestep; call once per optimization step,
    /// before stepping the slots of that round.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Snapshot of the optimizer's full mutable state for
    /// checkpointing. Restoring it with [`Adam::read_state`] and
    /// replaying the same gradient sequence reproduces bit-identical
    /// parameters: the step count drives the bias correction, so a
    /// resumed run that reset `t` would take differently-sized steps.
    pub fn write_state(&self) -> AdamState {
        AdamState { t: self.t, slots: self.state.clone() }
    }

    /// Restores state captured by [`Adam::write_state`].
    pub fn read_state(&mut self, state: &AdamState) {
        self.t = state.t;
        self.state = state.slots.clone();
    }

    /// Updates `params` in slot `slot` using `grads`. Slots identify
    /// parameter tensors (layer 0 weights = slot 0, etc.) and must be
    /// used consistently across steps.
    pub fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert!(self.t > 0, "call begin_step before step");
        if slot >= self.state.len() {
            self.state.resize(slot + 1, None);
        }
        let (m, v) = self.state[slot]
            .get_or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()]));
        assert_eq!(m.len(), params.len(), "slot reused with different size");
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + c.weight_decay * params[i];
            m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
            v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }
}

/// Serializable snapshot of an [`Adam`] optimizer: the shared step
/// count plus each slot's `(m, v)` moment pair (`None` for slots never
/// stepped).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamState {
    pub t: u64,
    pub slots: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_a_quadratic() {
        // Minimize f(p) = p^2; grad = 2p.
        let sgd = Sgd::new(0.1, 0.0);
        let mut p = [5.0f32];
        for _ in 0..100 {
            let g = [2.0 * p[0]];
            sgd.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-3);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let sgd = Sgd::new(0.1, 0.5);
        let mut p = [1.0f32];
        sgd.step(&mut p, &[0.0]);
        assert!((p[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.0, ..AdamConfig::with_lr(0.1) });
        let mut p = [5.0f32];
        for _ in 0..300 {
            adam.begin_step();
            let g = [2.0 * p[0]];
            adam.step(0, &mut p, &g);
        }
        assert!(p[0].abs() < 1e-2, "p = {}", p[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, |Δp| of step 1 ~= lr regardless of grad scale.
        for scale in [1e-3f32, 1.0, 1e3] {
            let mut adam = Adam::new(AdamConfig { weight_decay: 0.0, ..AdamConfig::with_lr(0.05) });
            let mut p = [0.0f32];
            adam.begin_step();
            adam.step(0, &mut p, &[scale]);
            assert!((p[0].abs() - 0.05).abs() < 1e-3, "scale {scale} gave {}", p[0]);
        }
    }

    #[test]
    fn adam_slots_are_independent() {
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.0, ..AdamConfig::with_lr(0.1) });
        let mut a = [1.0f32];
        let mut b = [1.0f32, 2.0];
        adam.begin_step();
        adam.step(0, &mut a, &[1.0]);
        adam.step(1, &mut b, &[1.0, 1.0]);
        adam.begin_step();
        adam.step(0, &mut a, &[1.0]);
        adam.step(1, &mut b, &[1.0, 1.0]);
        assert!(a[0] < 1.0 && b[0] < 1.0);
    }

    #[test]
    fn identical_replicas_stay_identical() {
        // Two replicas stepping with equal grads remain bit-identical —
        // the property distributed gradient sync relies on.
        let mk = || Adam::new(AdamConfig::with_lr(0.01));
        let (mut o1, mut o2) = (mk(), mk());
        let (mut p1, mut p2) = ([0.5f32, -0.5], [0.5f32, -0.5]);
        for step in 0..20 {
            let g = [step as f32 * 0.1 - 0.3, 0.2];
            o1.begin_step();
            o2.begin_step();
            o1.step(0, &mut p1, &g);
            o2.step(0, &mut p2, &g);
        }
        assert_eq!(p1, p2);
    }

    /// The recovery invariant: a restored optimizer continues exactly
    /// where the original would have — including the bias-correction
    /// trajectory, which depends on the restored step count.
    #[test]
    fn state_round_trip_resumes_bit_identically() {
        let mut live = Adam::new(AdamConfig::with_lr(0.01));
        let mut p_live = [0.5f32, -0.25];
        for step in 0..7 {
            live.begin_step();
            live.step(0, &mut p_live, &[0.1 * step as f32, -0.2]);
        }
        let saved = live.write_state();
        let p_saved = p_live;

        let mut resumed = Adam::new(AdamConfig::with_lr(0.01));
        resumed.read_state(&saved);
        let mut p_resumed = p_saved;
        for step in 7..14 {
            let g = [0.1 * step as f32, -0.2];
            live.begin_step();
            live.step(0, &mut p_live, &g);
            resumed.begin_step();
            resumed.step(0, &mut p_resumed, &g);
        }
        assert_eq!(p_live, p_resumed, "resumed replica diverged");
        assert_eq!(live.write_state(), resumed.write_state());
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn step_without_begin_panics() {
        let mut adam = Adam::new(AdamConfig::with_lr(0.1));
        let mut p = [0.0f32];
        adam.step(0, &mut p, &[1.0]);
    }
}
