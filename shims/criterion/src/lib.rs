//! Offline stand-in for `criterion`: wall-clock benchmarking with the
//! API subset this workspace uses — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `BenchmarkId::{new, from_parameter}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: a short warmup, then `sample_size` timed samples
//! (each batching iterations to reach ~1 ms minimum); the min/median/
//! max of per-iteration times are printed. No statistics beyond that —
//! compare medians across runs on a quiet machine.

use std::time::{Duration, Instant};

pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo passes `--bench` plus any user filter; the first
        // non-flag argument is the filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    /// Per-iteration durations, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + calibration: run until ~50 ms or 3 iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        let mut one = Duration::ZERO;
        while warm_iters < 3 || (warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1000)
        {
            let t = Instant::now();
            std::hint::black_box(routine());
            one = t.elapsed();
            warm_iters += 1;
        }
        // Batch iterations so each sample spans >= ~1 ms.
        let batch = if one >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / one.as_nanos().max(1) + 1) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let (min, med, max) = (s[0], s[s.len() / 2], s[s.len() - 1]);
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("libra", 4).id, "libra/4");
        assert_eq!(BenchmarkId::from_parameter("opt").id, "opt");
    }
}
