//! Indexed parallel iterators over the broadcast pool.
//!
//! An iterator here is a cheap, splittable *source*: `len()` items,
//! each fetched at most once by `get(i)`. Adapters (`zip`, `map`,
//! `enumerate`) compose sources; terminals (`for_each`, `reduce`,
//! `collect`) fan the index space out across the pool. `for_each` is
//! allocation-free, which the zero-allocation epoch path relies on.

use crate::pool::Pool;
use std::marker::PhantomData;

/// A random-access parallel source.
///
/// # Safety
/// `get(i)` must be called at most once per index per run, with
/// `i < len()`; disjoint indices must yield non-aliasing items (this is
/// what lets `ChunksMut` hand out `&mut` slices from a shared `&self`).
pub unsafe trait ParSource: Send + Sync {
    type Item: Send;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// # Safety
    /// See trait docs: unique `i < len()` per run.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

// ---------------------------------------------------------------- sources

pub struct Iter<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> ParSource for Iter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        unsafe { self.slice.get_unchecked(i) }
    }
}

pub struct IterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Send for IterMut<'a, T> {}
unsafe impl<'a, T: Send> Sync for IterMut<'a, T> {}

unsafe impl<'a, T: Send> ParSource for IterMut<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        unsafe { &mut *self.ptr.add(i) }
    }
}

pub struct Chunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

unsafe impl<'a, T: Sync> ParSource for Chunks<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk.max(1))
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        unsafe { self.slice.get_unchecked(start..end) }
    }
}

pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Send for ChunksMut<'a, T> {}
unsafe impl<'a, T: Send> Sync for ChunksMut<'a, T> {}

unsafe impl<'a, T: Send> ParSource for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk.max(1))
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

pub struct RangeIter {
    start: usize,
    end: usize,
}

unsafe impl ParSource for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.end - self.start
    }
    unsafe fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

// --------------------------------------------------------------- adapters

pub struct Zip<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: ParSource, B: ParSource> ParSource for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> Self::Item {
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

pub struct Enumerate<A> {
    inner: A,
}

unsafe impl<A: ParSource> ParSource for Enumerate<A> {
    type Item = (usize, A::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn get(&self, i: usize) -> Self::Item {
        unsafe { (i, self.inner.get(i)) }
    }
}

pub struct Map<A, F> {
    inner: A,
    f: F,
}

unsafe impl<A, F, R> ParSource for Map<A, F>
where
    A: ParSource,
    F: Fn(A::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn get(&self, i: usize) -> R {
        (self.f)(unsafe { self.inner.get(i) })
    }
}

// -------------------------------------------------------------- terminals

/// Grain for element-fine terminals (reduce/sum over raw floats):
/// enough indices per cursor pull to amortize the atomic.
fn reduce_grain(len: usize) -> usize {
    (len / (Pool::global().num_threads() * 8)).max(1024)
}

pub trait ParallelIterator: ParSource + Sized {
    fn zip<B: ParSource>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Runs `op` on every item. Items are pulled one index at a time
    /// (items are expected to be coarse: rows, chunks, blocks).
    /// Allocation-free in steady state.
    fn for_each<F: Fn(Self::Item) + Sync>(self, op: F) {
        Pool::global().dispatch(self.len(), 1, |start, end| {
            for i in start..end {
                op(unsafe { self.get(i) });
            }
        });
    }

    /// `reduce` with an identity constructor, rayon-style.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        Self::Item: Send,
    {
        let acc = std::sync::Mutex::new(identity());
        Pool::global().dispatch(self.len(), reduce_grain(self.len()), |start, end| {
            let mut local = identity();
            for i in start..end {
                local = op(local, unsafe { self.get(i) });
            }
            let mut guard = acc.lock().unwrap();
            let cur = std::mem::replace(&mut *guard, identity());
            *guard = op(cur, local);
        });
        acc.into_inner().unwrap()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = std::sync::Mutex::new(Vec::new());
        Pool::global().dispatch(self.len(), reduce_grain(self.len()), |start, end| {
            let local: S = (start..end).map(|i| unsafe { self.get(i) }).sum();
            parts.lock().unwrap().push(local);
        });
        parts.into_inner().unwrap().into_iter().sum()
    }

    /// Collects an exact-size source into a `Vec`, preserving order.
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_parallel(self)
    }

    /// Exposes `filter`-like behavior eagerly: not supported lazily by
    /// this shim — collect and filter sequentially instead.
    fn count(self) -> usize {
        self.len()
    }
}

impl<T: ParSource> ParallelIterator for T {}

pub trait FromParallel<T>: Sized {
    fn from_parallel<S: ParSource<Item = T>>(source: S) -> Self;
}

impl<T: Send> FromParallel<T> for Vec<T> {
    fn from_parallel<S: ParSource<Item = T>>(source: S) -> Vec<T> {
        let len = source.len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let base = out.as_mut_ptr() as usize;
        Pool::global().dispatch(len, 1, |start, end| {
            for i in start..end {
                unsafe { (base as *mut T).add(i).write(source.get(i)) }
            }
        });
        // Every index in 0..len was written exactly once.
        unsafe { out.set_len(len) };
        out
    }
}

// -------------------------------------------------------- entry points

pub trait ParSliceExt<T> {
    fn par_iter(&self) -> Iter<'_, T>;
    fn par_chunks(&self, chunk: usize) -> Chunks<'_, T>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
    fn par_chunks(&self, chunk: usize) -> Chunks<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        Chunks { slice: self, chunk }
    }
}

pub trait ParSliceMutExt<T> {
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
    }
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksMut { ptr: self.as_mut_ptr(), len: self.len(), chunk, _marker: PhantomData }
    }
}

pub trait IntoParallelIterator {
    type Iter: ParSource;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { start: self.start, end: self.end.max(self.start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_mut_for_each_writes_all_rows() {
        let mut data = vec![0.0f32; 37 * 3];
        data.par_chunks_mut(3).enumerate().for_each(|(i, row)| {
            row.iter_mut().for_each(|x| *x = i as f32);
        });
        for (i, row) in data.chunks(3).enumerate() {
            assert!(row.iter().all(|&x| x == i as f32), "row {i}");
        }
    }

    #[test]
    fn zip_three_way_matches_sequential() {
        let mut out = vec![0.0f32; 64 * 4];
        let src: Vec<f32> = (0..64 * 4).map(|i| i as f32).collect();
        let scale: Vec<f32> = (0..64).map(|i| (i % 5) as f32).collect();
        out.par_chunks_mut(4)
            .zip(src.par_chunks(4))
            .zip(scale.par_iter())
            .for_each(|((o, s), &k)| {
                for (oo, &ss) in o.iter_mut().zip(s) {
                    *oo = ss * k;
                }
            });
        for i in 0..64 {
            for j in 0..4 {
                assert_eq!(out[i * 4 + j], src[i * 4 + j] * (i % 5) as f32);
            }
        }
    }

    #[test]
    fn reduce_computes_max() {
        let v: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 1000) as f32 - 500.0).collect();
        let got = v.par_iter().map(|x| x.abs()).reduce(|| 0.0, f32::max);
        let want = v.iter().map(|x| x.abs()).fold(0.0, f32::max);
        assert_eq!(got, want);
    }

    #[test]
    fn collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn iter_mut_gives_each_element_once() {
        let mut v = vec![1u64; 5000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }
}
