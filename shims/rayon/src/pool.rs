//! A persistent broadcast thread pool.
//!
//! One global pool, spawned on first use. Jobs are *broadcast*: every
//! worker (plus the submitting thread) pulls index ranges from a shared
//! atomic cursor until the job is drained. Job state lives on the
//! submitter's stack; the submitter always waits for every worker to
//! leave the job before returning, even when unwinding, so no dangling
//! references can escape.
//!
//! Steady-state dispatch performs **zero heap allocations** — this is
//! load-bearing for the zero-allocation training-epoch guarantee, so
//! keep it that way when editing.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Type-erased job: `run(env, start, end)` processes indices
/// `start..end` of the submitted range.
#[derive(Clone, Copy)]
struct JobRef {
    run: unsafe fn(*const (), usize, usize),
    env: *const (),
    cursor: *const AtomicUsize,
    panicked: *const AtomicBool,
    len: usize,
    grain: usize,
}

// The raw pointers reference the submitter's stack frame, which
// outlives the job by construction (the submitter blocks until every
// worker reports completion).
unsafe impl Send for JobRef {}

struct State {
    /// Monotonically increasing job id; workers watch for changes.
    seq: u64,
    job: Option<JobRef>,
    /// Workers that finished the current job.
    finished: usize,
}

struct PoolShared {
    state: Mutex<State>,
    /// Workers sleep here waiting for a new job.
    job_ready: Condvar,
    /// The submitter sleeps here waiting for workers to drain.
    job_done: Condvar,
    workers: usize,
}

pub struct Pool {
    shared: &'static PoolShared,
    /// Serializes submitters (ranks in the SPMD cluster submit
    /// concurrently); workers never take this lock.
    submit: Mutex<()>,
}

thread_local! {
    /// True on pool worker threads: nested dispatch runs inline.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn drain(job: &JobRef) {
    let cursor = unsafe { &*job.cursor };
    let panicked = unsafe { &*job.panicked };
    loop {
        let start = cursor.fetch_add(job.grain, Ordering::Relaxed);
        if start >= job.len {
            break;
        }
        let end = (start + job.grain).min(job.len);
        let res = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.env, start, end) }));
        if res.is_err() {
            panicked.store(true, Ordering::Relaxed);
            // Poison the cursor so everyone stops pulling work.
            cursor.store(job.len, Ordering::Relaxed);
            break;
        }
    }
}

fn worker_loop(shared: &'static PoolShared) {
    IS_WORKER.with(|w| w.set(true));
    let mut last_seen = 0u64;
    let mut guard = shared.state.lock().unwrap();
    loop {
        while guard.seq == last_seen {
            guard = shared.job_ready.wait(guard).unwrap();
        }
        last_seen = guard.seq;
        let job = match guard.job {
            Some(j) => j,
            None => continue,
        };
        drop(guard);
        drain(&job);
        guard = shared.state.lock().unwrap();
        guard.finished += 1;
        if guard.finished == shared.workers {
            shared.job_done.notify_one();
        }
    }
}

impl Pool {
    fn new() -> Pool {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // The submitter participates, so spawn one fewer worker.
        let workers = threads.saturating_sub(1);
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(State { seq: 0, job: None, finished: 0 }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            workers,
        }));
        for _ in 0..workers {
            std::thread::Builder::new()
                .name("shim-rayon-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, submit: Mutex::new(()) }
    }

    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(Pool::new)
    }

    /// Total threads that execute a job (workers + submitter).
    pub fn num_threads(&self) -> usize {
        self.shared.workers + 1
    }

    /// Runs `body(start, end)` over disjoint subranges covering
    /// `0..len`, pulling ranges of `grain` indices dynamically.
    ///
    /// `body` must tolerate concurrent invocation on disjoint ranges.
    pub fn dispatch<F>(&self, len: usize, grain: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        // Inline when the pool is trivial, the job is one grain, or we
        // are already on a worker (no nested broadcast).
        if self.shared.workers == 0 || len <= grain || IS_WORKER.with(|w| w.get()) {
            body(0, len);
            return;
        }

        unsafe fn call<F: Fn(usize, usize)>(env: *const (), start: usize, end: usize) {
            let f = unsafe { &*(env as *const F) };
            f(start, end);
        }

        let cursor = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        let job = JobRef {
            run: call::<F>,
            env: &body as *const F as *const (),
            cursor: &cursor,
            panicked: &panicked,
            len,
            grain,
        };

        let _submit_guard = self.submit.lock().unwrap();
        {
            let mut guard = self.shared.state.lock().unwrap();
            guard.seq += 1;
            guard.job = Some(job);
            guard.finished = 0;
        }
        self.shared.job_ready.notify_all();

        // Participate, then wait for every worker to leave the job.
        drain(&job);
        let mut guard = self.shared.state.lock().unwrap();
        while guard.finished < self.shared.workers {
            guard = self.shared.job_done.wait(guard).unwrap();
        }
        guard.job = None;
        drop(guard);

        if panicked.load(Ordering::Relaxed) {
            resume_unwind(Box::new("parallel job panicked"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        Pool::global().dispatch(n, 7, |s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn concurrent_submitters_do_not_interfere() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sum = AtomicUsize::new(0);
                    Pool::global().dispatch(1000, 13, |s, e| {
                        sum.fetch_add((s..e).sum::<usize>(), Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
                });
            }
        });
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let res = std::panic::catch_unwind(|| {
            // Check containment, not the range start: on a 1-CPU host
            // the pool runs inline and the body sees one range 0..100.
            Pool::global().dispatch(100, 1, |s, e| {
                if (s..e).contains(&57) {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err());
    }
}
