//! Offline stand-in for `rayon`, implementing the API subset this
//! workspace uses: `par_iter`/`par_iter_mut`/`par_chunks`/
//! `par_chunks_mut` on slices, `into_par_iter` on `Range<usize>`,
//! `zip`/`enumerate`/`map` adapters, `for_each`/`reduce`/`sum`/
//! `collect` terminals, and `current_num_threads`.
//!
//! Work runs on a persistent global thread pool (see [`pool`]);
//! steady-state `for_each` dispatch allocates nothing.

mod iter;
mod pool;

pub use iter::{
    Chunks, ChunksMut, Enumerate, FromParallel, IntoParallelIterator, Iter, IterMut, Map,
    ParSliceExt, ParSliceMutExt, ParSource, ParallelIterator, RangeIter, Zip,
};

/// Number of threads that cooperate on a parallel job (workers plus the
/// submitting thread), matching rayon's semantics closely enough for
/// scheduling heuristics.
pub fn current_num_threads() -> usize {
    pool::Pool::global().num_threads()
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParSliceExt, ParSliceMutExt, ParallelIterator,
    };
    pub use crate::current_num_threads;
}
