//! Offline stand-in for `rand`, implementing the API subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 (Steele et al.) — statistically fine for
//! feature init, synthetic graphs, and shuffles. Streams differ from
//! the real `rand` crate for the same seed; everything downstream is
//! seeded and self-consistent, so only cross-crate golden values would
//! notice.

pub mod rngs {
    /// Seeded 64-bit generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble so nearby seeds give unrelated streams.
        rngs::StdRng::from_state(seed ^ 0x5851f42d4c957f2d)
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn from_rng(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn from_rng(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng(rng: &mut rngs::StdRng) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_rng(rng: &mut rngs::StdRng) -> f32 {
        // 24 random bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges acceptable to `Rng::gen_range()`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the graph-scale spans
                // used here (span << 2^64).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen::<f64>() < p
    }
}

pub mod seq {
    use super::{rngs::StdRng, Rng};

    pub trait SliceRandom {
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_land_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = rngs::StdRng::seed_from_u64(17);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
