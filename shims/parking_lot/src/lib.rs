//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's non-poisoning API (`lock()`
//! returns the guard directly). Poisoning is ignored — a panic while
//! holding the lock leaves the data as-is, matching parking_lot.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
