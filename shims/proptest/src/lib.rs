//! Offline stand-in for `proptest`: seeded random property testing.
//!
//! Implements the API subset this workspace uses — `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_filter`, range and tuple
//! strategies, `collection::{vec, hash_set}`, `sample::select`,
//! `any::<T>()`, `ProptestConfig::with_cases`, the `proptest!` macro
//! and `prop_assert*` assertions.
//!
//! Differences from real proptest: no shrinking (a failing case prints
//! its panic message only) and a deterministic per-test seed derived
//! from the test's module path, so failures reproduce exactly on rerun.

use std::collections::HashSet;
use std::hash::Hash;

// ------------------------------------------------------------------ rng

/// SplitMix64; deterministic per test function (seeded from the test's
/// `module_path!()::name`), so failures reproduce.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ------------------------------------------------------------- strategy

pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter { inner: self, whence, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// Constant strategy, proptest's `Just`.
#[derive(Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u8, i64, i32);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

// ------------------------------------------------------------ arbitrary

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

// ----------------------------------------------------------- collection

pub mod collection {
    use super::*;

    /// Element count for collection strategies: an exact count or a
    /// half-open range, mirroring proptest's `SizeRange` conversions.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // The element domain may be smaller than `n`; settle for
            // what distinct values we can find (proptest does the same
            // within its rejection budget).
            for _ in 0..n * 100 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size: size.into() }
    }
}

// --------------------------------------------------------------- sample

pub mod sample {
    use super::*;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs at least one option");
        Select { options }
    }
}

// --------------------------------------------------------------- config

#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// --------------------------------------------------------------- macros

/// No shrinking: assertions panic directly (the harness reports the
/// panic message plus the deterministic case number printed by the
/// runner loop).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )*
                        $body
                    }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {} failed at case {}/{} (deterministic seed; rerun reproduces)",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x::y");
        let mut b = crate::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..9), x in -1.0f32..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..50, 0u32..50).prop_filter("ne", |(a, b)| a != b), 0..20),
            n in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n)),
            pick in crate::sample::select(vec![2usize, 4, 8]),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|(a, b)| a != b));
            prop_assert!(!n.is_empty() && n.iter().all(|&i| i < n.len()));
            prop_assert!([2usize, 4, 8].contains(&pick));
            let _ = flag;
        }

        #[test]
        fn hash_sets_hit_requested_size(s in crate::collection::hash_set(0u64..1000, 5..10)) {
            prop_assert!((5..10).contains(&s.len()));
        }
    }
}
