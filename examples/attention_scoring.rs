//! Edge scoring with the SDDMM / edge-softmax / weighted-AP pipeline —
//! the kernel composition behind attention models and link prediction
//! (DGL's second primitive family, §2.2 of the paper).
//!
//! Trains GraphSAGE normally, then uses the learned embeddings to
//! (a) score every edge with a dot-product SDDMM, (b) normalize scores
//! per destination with edge softmax, and (c) produce attention-
//! weighted neighbourhood summaries with the aggregation primitive —
//! checking that planted intra-community edges outscore the
//! cross-community ones.
//!
//! Run with: `cargo run --release --example attention_scoring`

use distgnn_suite::core::single::{Trainer, TrainerConfig};
use distgnn_suite::graph::generators::community_of;
use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::kernels::{
    aggregate, edge_softmax, sddmm, AggregationConfig, BinaryOp, ReduceOp, SddmmOp,
};
use distgnn_suite::tensor::{ops, Matrix};

fn main() {
    let cfg = ScaledConfig::products_s().scaled_by(0.3);
    let dataset = Dataset::generate(&cfg);
    println!(
        "dataset {}: {} vertices, {} edges",
        dataset.name,
        dataset.num_vertices(),
        dataset.graph.num_edges()
    );

    // 1. Learn embeddings with the standard trainer.
    let tcfg = TrainerConfig::for_dataset(&dataset, AggregationConfig::optimized(2), 40);
    let mut trainer = Trainer::new(&dataset, &tcfg);
    for _ in 0..40 {
        trainer.train_epoch();
    }
    println!("trained: test accuracy {:.1}%", trainer.evaluate() * 100.0);

    // 2. Penultimate-layer embeddings as the scoring space: rerun the
    //    forward pass and keep the hidden activations.
    let mut agg = distgnn_suite::core::SingleSocketAggregator::new(
        &dataset.graph,
        AggregationConfig::optimized(2),
    );
    let (_, cache) = trainer.model.forward(&mut agg, &dataset.features);
    let hidden = ops::relu(&cache.pre_activations[cache.pre_activations.len() - 2]);

    // 3. Dot-product edge scores.
    let logits = sddmm(&dataset.graph, &hidden, &hidden, SddmmOp::Dot);

    // Intra- vs inter-community separation of the raw scores.
    let el = dataset.graph.to_edge_list();
    let n = dataset.num_vertices();
    let classes = dataset.num_classes;
    let (mut intra, mut inter, mut n_intra, mut n_inter) = (0.0f64, 0.0f64, 0u64, 0u64);
    for (e, u, v) in el.iter() {
        let same = community_of(u, n, classes) == community_of(v, n, classes);
        if same {
            intra += logits[(e, 0)] as f64;
            n_intra += 1;
        } else {
            inter += logits[(e, 0)] as f64;
            n_inter += 1;
        }
    }
    let (mi, mx) = (intra / n_intra as f64, inter / n_inter.max(1) as f64);
    println!("mean edge score: intra-community {mi:.3} vs cross-community {mx:.3}");
    assert!(mi > mx, "learned embeddings must separate planted communities");

    // 4. Edge softmax + attention-weighted aggregation.
    let att = edge_softmax(&dataset.graph, &logits);
    let mut att_wide = Matrix::zeros(dataset.graph.num_edges(), hidden.cols());
    for e in 0..dataset.graph.num_edges() {
        let a = att[(e, 0)];
        att_wide.row_mut(e).iter_mut().for_each(|x| *x = a);
    }
    let summary = aggregate(
        &dataset.graph,
        &hidden,
        Some(&att_wide),
        BinaryOp::Mul,
        ReduceOp::Sum,
        &AggregationConfig::optimized(2),
    );
    println!(
        "attention-weighted summaries: {} x {} (finite: {})",
        summary.rows(),
        summary.cols(),
        summary.as_slice().iter().all(|x| x.is_finite())
    );
}
