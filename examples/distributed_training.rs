//! Distributed full-batch training with the three DistGNN algorithms.
//!
//! Partitions a Proteins-like clustered graph with Libra vertex-cut and
//! trains GraphSAGE on a simulated 4-socket cluster under `0c`
//! (communication-avoiding), `cd-0` (synchronous clone sync) and
//! `cd-5` (delayed partial aggregates), then compares accuracy, epoch
//! time and communication volume.
//!
//! Run with: `cargo run --release --example distributed_training`

use distgnn_suite::core::{DistConfig, DistMode, DistTrainer};
use distgnn_suite::graph::{Dataset, ScaledConfig};

fn main() {
    let dataset = Dataset::generate(&ScaledConfig::proteins_s().scaled_by(0.25));
    println!(
        "dataset {}: {} vertices, {} edges",
        dataset.name,
        dataset.num_vertices(),
        dataset.graph.num_edges()
    );

    let sockets = 4;
    let epochs = 40;
    println!("\n{sockets} simulated sockets, {epochs} epochs, delay r = 5 for cd-r\n");
    println!(
        "{:>6} | {:>9} | {:>12} | {:>12} | {:>14}",
        "mode", "test acc", "epoch (ms)", "LAT (ms)", "sent (MiB)"
    );
    println!("{}", "-".repeat(66));

    for mode in [DistMode::Cd0, DistMode::CdR { delay: 5 }, DistMode::Oc] {
        let config = DistConfig::new(&dataset, mode, sockets, epochs);
        let report = DistTrainer::run(&dataset, &config);
        let sent: u64 = report.per_rank_comm.iter().map(|s| s.bytes_sent).sum();
        println!(
            "{:>6} | {:>8.2}% | {:>12.2} | {:>12.2} | {:>14.2}",
            mode.name(),
            report.test_accuracy * 100.0,
            report.mean_epoch_time(mode).as_secs_f64() * 1e3,
            report.mean_lat().as_secs_f64() * 1e3,
            sent as f64 / (1024.0 * 1024.0),
        );
        // The replicas must agree after every epoch (AllReduce sync).
        assert!(report.final_params.windows(2).all(|w| w[0] == w[1]));
    }

    println!();
    println!("Expected: cd-0 sends the most and is slowest per epoch; 0c sends only");
    println!("gradients; cd-5 sits between, with accuracy within ~1% of cd-0.");
}
