//! Persistence workflow: generate once, partition once, train, stop,
//! resume from a checkpoint — the operational loop a production
//! deployment of DistGNN runs (Dist-DGL ships the same
//! partition/load-partition split).
//!
//! Run with: `cargo run --release --example persistence`

use distgnn_suite::core::single::{Trainer, TrainerConfig};
use distgnn_suite::core::{DistConfig, DistMode, DistTrainer};
use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::io;
use distgnn_suite::kernels::AggregationConfig;
use distgnn_suite::partition::{libra_partition, PartitionedGraph};

fn main() {
    let work = std::env::temp_dir().join("distgnn-persistence-example");
    std::fs::create_dir_all(&work).unwrap();

    // 1. Generate and persist the dataset.
    let dataset = Dataset::generate(&ScaledConfig::am_s());
    io::save_dataset(&work.join("dataset"), &dataset).unwrap();
    println!("saved dataset to {:?}", work.join("dataset"));

    // 2. Partition once, persist the edge assignment.
    let edges = dataset.graph.to_edge_list();
    let partitioning = libra_partition(&edges, 4);
    io::save_partitioning(&work.join("libra-4.part"), &partitioning).unwrap();
    println!("saved 4-way Libra partitioning");

    // 3. A later process: load everything back and train distributed,
    //    reusing the stored partitioning (no re-partitioning cost).
    let loaded = io::load_dataset(&work.join("dataset")).unwrap();
    let loaded_part =
        io::load_partitioning(&work.join("libra-4.part"), &loaded.graph.to_edge_list()).unwrap();
    let pg = PartitionedGraph::build(&loaded.graph.to_edge_list(), &loaded_part, 0xD157);
    let cfg = DistConfig::new(&loaded, DistMode::CdR { delay: 5 }, 4, 30);
    let report = DistTrainer::run_on(&loaded, &pg, &cfg);
    println!(
        "distributed run from disk: test accuracy {:.2}%",
        report.test_accuracy * 100.0
    );

    // 4. Single-socket training with checkpointing mid-run.
    let tcfg = TrainerConfig::for_dataset(&loaded, AggregationConfig::optimized(2), 15);
    let mut trainer = Trainer::new(&loaded, &tcfg);
    for _ in 0..15 {
        trainer.train_epoch();
    }
    io::save_params(&work.join("model.ckpt"), &trainer.model).unwrap();
    let acc_at_ckpt = trainer.evaluate();
    println!("checkpoint written at accuracy {:.2}%", acc_at_ckpt * 100.0);

    // 5. Resume in a fresh trainer: accuracy carries over exactly.
    let mut resumed = Trainer::new(&loaded, &tcfg);
    io::load_params(&work.join("model.ckpt"), &mut resumed.model).unwrap();
    let acc_resumed = resumed.evaluate();
    println!("resumed accuracy {:.2}%", acc_resumed * 100.0);
    assert_eq!(acc_at_ckpt, acc_resumed, "checkpoint round trip must be exact");

    for _ in 0..15 {
        resumed.train_epoch();
    }
    println!(
        "after 15 more epochs: {:.2}%",
        resumed.evaluate() * 100.0
    );
    std::fs::remove_dir_all(&work).ok();
}
