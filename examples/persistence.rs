//! Persistence workflow: generate once, partition once, train, stop,
//! resume from a checkpoint — the operational loop a production
//! deployment of DistGNN runs (Dist-DGL ships the same
//! partition/load-partition split). Ends with the crash-recovery
//! drill: a distributed run killed mid-training by an injected fault
//! resumes from its last consistent checkpoint and finishes with
//! parameters bit-identical to a never-killed run.
//!
//! Run with: `cargo run --release --example persistence`

use distgnn_suite::comm::FaultPlan;
use distgnn_suite::core::single::{Trainer, TrainerConfig};
use distgnn_suite::core::{DistConfig, DistMode, DistTrainer};
use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::io;
use distgnn_suite::kernels::AggregationConfig;
use distgnn_suite::partition::{libra_partition, PartitionedGraph};

fn main() {
    let work = std::env::temp_dir().join("distgnn-persistence-example");
    std::fs::create_dir_all(&work).unwrap();

    // 1. Generate and persist the dataset.
    let dataset = Dataset::generate(&ScaledConfig::am_s());
    io::save_dataset(&work.join("dataset"), &dataset).unwrap();
    println!("saved dataset to {:?}", work.join("dataset"));

    // 2. Partition once, persist the edge assignment.
    let edges = dataset.graph.to_edge_list();
    let partitioning = libra_partition(&edges, 4);
    io::save_partitioning(&work.join("libra-4.part"), &partitioning).unwrap();
    println!("saved 4-way Libra partitioning");

    // 3. A later process: load everything back and train distributed,
    //    reusing the stored partitioning (no re-partitioning cost).
    let loaded = io::load_dataset(&work.join("dataset")).unwrap();
    let loaded_part =
        io::load_partitioning(&work.join("libra-4.part"), &loaded.graph.to_edge_list()).unwrap();
    let pg = PartitionedGraph::build(&loaded.graph.to_edge_list(), &loaded_part, 0xD157);
    let cfg = DistConfig::new(&loaded, DistMode::CdR { delay: 5 }, 4, 30);
    let report = DistTrainer::run_on(&loaded, &pg, &cfg);
    println!(
        "distributed run from disk: test accuracy {:.2}%",
        report.test_accuracy * 100.0
    );

    // 4. Single-socket training with checkpointing mid-run.
    let tcfg = TrainerConfig::for_dataset(&loaded, AggregationConfig::optimized(2), 15);
    let mut trainer = Trainer::new(&loaded, &tcfg);
    for _ in 0..15 {
        trainer.train_epoch();
    }
    io::save_params(&work.join("model.ckpt"), &trainer.model.write_params()).unwrap();
    let acc_at_ckpt = trainer.evaluate();
    println!("checkpoint written at accuracy {:.2}%", acc_at_ckpt * 100.0);

    // 5. Resume in a fresh trainer: accuracy carries over exactly.
    let mut resumed = Trainer::new(&loaded, &tcfg);
    let params = io::load_params(&work.join("model.ckpt")).unwrap();
    resumed.model.read_params(&params);
    let acc_resumed = resumed.evaluate();
    println!("resumed accuracy {:.2}%", acc_resumed * 100.0);
    assert_eq!(acc_at_ckpt, acc_resumed, "checkpoint round trip must be exact");

    for _ in 0..15 {
        resumed.train_epoch();
    }
    println!(
        "after 15 more epochs: {:.2}%",
        resumed.evaluate() * 100.0
    );

    // 6. Crash recovery drill: train with epoch-boundary checkpoints
    //    under a fault plan that crashes a rank mid-run, killing the
    //    attempt. The supervisor reloads the last consistent
    //    checkpoint, relaunches, and the recovered run's parameters
    //    are bit-identical to an uninterrupted reference run.
    let ckpt_root = work.join("checkpoints");
    let mut chaos = DistConfig::new(&loaded, DistMode::Cd0, 4, 12);
    chaos.checkpoint_every = 3;
    chaos.checkpoint_dir = Some(ckpt_root.clone());
    chaos.faults = FaultPlan::none().with_crash(1, 7);
    let recovered = DistTrainer::try_run_recovering_on(&loaded, &pg, &chaos, 2, false)
        .expect("the supervised run must recover");
    println!(
        "recovered run: {} restart(s), {} epoch(s) replayed",
        recovered.restarts, recovered.epochs_replayed
    );

    let mut clean = chaos.clone();
    clean.faults = FaultPlan::none();
    clean.checkpoint_every = 0;
    clean.checkpoint_dir = None;
    let reference = DistTrainer::try_run_on(&loaded, &pg, &clean).unwrap();
    assert_eq!(
        recovered.run.final_params, reference.final_params,
        "kill-and-resume must be bit-identical to the uninterrupted run"
    );
    println!("recovered parameters are bit-identical to the uninterrupted run");
    std::fs::remove_dir_all(&work).ok();
}
