//! Quickstart: generate a graph, train GraphSAGE full-batch on one
//! socket with the optimized aggregation kernel, evaluate.
//!
//! Run with: `cargo run --release --example quickstart`

use distgnn_suite::core::single::{Trainer, TrainerConfig};
use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::kernels::AggregationConfig;

fn main() {
    // 1. A synthetic stand-in for OGBN-Products: power-law degrees,
    //    planted community labels, noisy one-hot features.
    let dataset = Dataset::generate(&ScaledConfig::products_s().scaled_by(0.5));
    let stats = distgnn_suite::graph::stats::graph_stats(&dataset.graph);
    println!(
        "dataset {}: {} vertices, {} edges, avg degree {:.1}, {} classes",
        dataset.name, stats.num_vertices, stats.num_edges, stats.avg_degree, dataset.num_classes
    );

    // 2. Configure the trainer: 3-layer GraphSAGE with the DistGNN
    //    optimized kernel (dynamic scheduling + cache blocking + loop
    //    reordering).
    let n_blocks = AggregationConfig::auto_blocks(
        dataset.num_vertices(),
        dataset.feat_dim(),
        1 << 20,
    );
    let config = TrainerConfig::for_dataset(&dataset, AggregationConfig::optimized(n_blocks), 40);
    println!(
        "model layers: {:?}, kernel blocks: {n_blocks}",
        config.model.layer_dims()
    );

    // 3. Train full-batch and evaluate on the held-out split.
    let report = Trainer::run(&dataset, &config);
    for (i, e) in report.epochs.iter().enumerate().step_by(10) {
        println!(
            "epoch {i:>3}: loss {:.4}, train acc {:.1}%, epoch {:.1} ms (AP {:.1} ms)",
            e.loss,
            e.train_accuracy * 100.0,
            e.epoch_time.as_secs_f64() * 1e3,
            e.agg_time.as_secs_f64() * 1e3,
        );
    }
    println!("test accuracy: {:.2}%", report.test_accuracy * 100.0);
    assert!(report.test_accuracy > 0.8, "training should converge");
}
