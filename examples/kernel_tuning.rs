//! Tuning the aggregation primitive: blocking, scheduling, loop order.
//!
//! Sweeps the cache-blocking factor `n_B` on a dense Reddit-like graph
//! and shows (a) modelled memory traffic from the cache simulator and
//! (b) measured kernel time, for the destination-major and
//! feature-strip loop orders — the workflow a user follows to pick a
//! kernel configuration for their own graph.
//!
//! Run with: `cargo run --release --example kernel_tuning`

use distgnn_suite::cachesim::CacheConfig;
use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::kernels::instrumented::{replay_aggregation, ReplaySpec};
use distgnn_suite::kernels::{
    AggregationConfig, BinaryOp, LoopOrder, PreparedAggregation, ReduceOp,
};
use std::time::Instant;

fn main() {
    let dataset = Dataset::generate(&ScaledConfig::reddit_s());
    println!(
        "graph: {} vertices, {} edges, d = {}",
        dataset.num_vertices(),
        dataset.graph.num_edges(),
        dataset.feat_dim()
    );
    let cache = CacheConfig::llc_model();
    println!(
        "cache model: {} KiB ({}-way)\n",
        cache.capacity >> 10,
        cache.associativity
    );

    println!(
        "{:>5} | {:>14} | {:>14} | {:>12} | {:>12}",
        "n_B", "IO dst-major", "IO strips", "t dst-major", "t strips"
    );
    println!("{}", "-".repeat(70));
    let mut best: Option<(usize, f64)> = None;
    for n_b in [1usize, 2, 4, 8, 16, 32, 64] {
        let io = |order| {
            let spec = ReplaySpec {
                feat_dim: dataset.feat_dim(),
                n_blocks: n_b,
                loop_order: order,
                op: BinaryOp::CopyLhs,
            };
            replay_aggregation(&dataset.graph, &spec, cache).traffic.total_io()
        };
        let time = |order| {
            let cfg = AggregationConfig::optimized(n_b).with_loop_order(order);
            let prep = PreparedAggregation::new(&dataset.graph, cfg);
            let t0 = Instant::now();
            for _ in 0..3 {
                std::hint::black_box(prep.aggregate(
                    &dataset.features,
                    None,
                    BinaryOp::CopyLhs,
                    ReduceOp::Sum,
                ));
            }
            t0.elapsed().as_secs_f64() * 1e3 / 3.0
        };
        let t_strips = time(LoopOrder::FeatureStrips);
        println!(
            "{:>5} | {:>10.1} MiB | {:>10.1} MiB | {:>9.2} ms | {:>9.2} ms",
            n_b,
            io(LoopOrder::DestinationMajor) as f64 / (1 << 20) as f64,
            io(LoopOrder::FeatureStrips) as f64 / (1 << 20) as f64,
            time(LoopOrder::DestinationMajor),
            t_strips,
        );
        if best.is_none_or(|(_, t)| t_strips < t) {
            best = Some((n_b, t_strips));
        }
    }
    let (best_nb, best_t) = best.unwrap();
    println!("\nfastest measured: n_B = {best_nb} ({best_t:.2} ms with feature strips)");
    println!(
        "auto_blocks heuristic suggests n_B = {}",
        AggregationConfig::auto_blocks(dataset.num_vertices(), dataset.feat_dim(), cache.capacity)
    );
}
