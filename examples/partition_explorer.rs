//! Exploring vertex-cut partition quality across graph shapes.
//!
//! Partitions each of the scaled benchmark graphs with Libra and with
//! the hash baseline, reporting replication factor, edge balance and
//! split-vertex percentage — the quantities that govern distributed
//! communication volume (§5.1, Tables 4 and 6).
//!
//! Run with: `cargo run --release --example partition_explorer`

use distgnn_suite::graph::{Dataset, ScaledConfig};
use distgnn_suite::partition::metrics::{
    edge_balance, replication_factor, split_vertex_percentages,
};
use distgnn_suite::partition::random::hash_partition;
use distgnn_suite::partition::{libra_partition, PartitionedGraph};

fn main() {
    let k = 8;
    println!("partitioning every dataset into {k} parts\n");
    println!(
        "{:>16} | {:>9} | {:>9} | {:>8} | {:>9} | {:>10}",
        "dataset", "libra rf", "hash rf", "balance", "split %", "max route"
    );
    println!("{}", "-".repeat(78));

    for cfg in [
        ScaledConfig::am_s(),
        ScaledConfig::reddit_s().scaled_by(0.5),
        ScaledConfig::products_s().scaled_by(0.5),
        ScaledConfig::proteins_s().scaled_by(0.5),
        ScaledConfig::papers_s().scaled_by(0.25),
    ] {
        let ds = Dataset::generate(&cfg);
        let edges = ds.graph.to_edge_list();
        let libra = libra_partition(&edges, k);
        let hash = hash_partition(&edges, k);
        let pg = PartitionedGraph::build(&edges, &libra, 7);
        let split = split_vertex_percentages(&libra);
        let mean_split = split.iter().sum::<f64>() / split.len() as f64;
        let max_route = pg
            .routes
            .iter()
            .flat_map(|row| row.iter().map(|r| r.len()))
            .max()
            .unwrap_or(0);
        println!(
            "{:>16} | {:>9.2} | {:>9.2} | {:>8.3} | {:>8.1}% | {:>10}",
            ds.name,
            replication_factor(&libra),
            replication_factor(&hash),
            edge_balance(&libra),
            mean_split,
            max_route,
        );
        // Libra must never be worse than hashing on replication.
        assert!(replication_factor(&libra) <= replication_factor(&hash) + 1e-9);
    }

    println!();
    println!("Reading the table: dense graphs (reddit-s) replicate heavily; clustered");
    println!("graphs (proteins-s) barely replicate — the Table 4 effect that makes");
    println!("Proteins scale to 64 sockets while Reddit saturates at 16.");
}
