//! Umbrella crate for the DistGNN reproduction.
//!
//! Re-exports the public API of every workspace crate so the examples
//! and integration tests can reach the whole system through one path.

pub use distgnn_cachesim as cachesim;
pub use distgnn_comm as comm;
pub use distgnn_core as core;
pub use distgnn_graph as graph;
pub use distgnn_io as io;
pub use distgnn_kernels as kernels;
pub use distgnn_nn as nn;
pub use distgnn_partition as partition;
pub use distgnn_serve as serve;
pub use distgnn_telemetry as telemetry;
pub use distgnn_tensor as tensor;
